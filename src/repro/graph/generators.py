"""Synthetic graph families used by the paper's examples and our benchmarks.

Every generator is deterministic given its arguments (random families take an
explicit ``seed``), so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graph.edge_labeled import EdgeLabeledGraph, Label
from repro.graph.property_graph import PropertyGraph


def label_path(length: int, label: Label = "a") -> EdgeLabeledGraph:
    """A simple directed path ``v0 -> v1 -> ... -> v<length>`` of same-labeled edges."""
    graph = EdgeLabeledGraph()
    graph.add_node("v0")
    for index in range(length):
        graph.add_edge(f"e{index}", f"v{index}", f"v{index + 1}", label)
    return graph


def label_cycle(length: int, label: Label = "a") -> EdgeLabeledGraph:
    """A directed cycle of ``length`` same-labeled edges."""
    if length <= 0:
        raise ValueError("cycle length must be positive")
    graph = EdgeLabeledGraph()
    for index in range(length):
        graph.add_edge(
            f"e{index}", f"v{index}", f"v{(index + 1) % length}", label
        )
    return graph


def clique(size: int, label: Label = "a", loops: bool = True) -> EdgeLabeledGraph:
    """The complete directed graph on ``size`` nodes with one label.

    Section 6.1 evaluates ``(((a*)*)*)*`` on a 6-clique; ``loops`` controls
    whether self-loops are included (the classical K_n has none, but the
    counting explosion happens either way).
    """
    graph = EdgeLabeledGraph()
    for index in range(size):
        graph.add_node(f"v{index}")
    edge = 0
    for i in range(size):
        for j in range(size):
            if i == j and not loops:
                continue
            graph.add_edge(f"e{edge}", f"v{i}", f"v{j}", label)
            edge += 1
    return graph


def diamond_chain(diamonds: int, label: Label = "a") -> EdgeLabeledGraph:
    """The Figure 5 graph: ``2**diamonds`` distinct s-to-t paths in O(diamonds) size.

    Each stage offers a top and a bottom 2-edge route between consecutive
    junction nodes; the junctions are named ``j0`` (= ``s``) through
    ``j<diamonds>`` (= ``t``).
    """
    graph = EdgeLabeledGraph()
    graph.add_node("j0")
    for stage in range(diamonds):
        here, there = f"j{stage}", f"j{stage + 1}"
        graph.add_edge(f"up{stage}a", here, f"top{stage}", label)
        graph.add_edge(f"up{stage}b", f"top{stage}", there, label)
        graph.add_edge(f"dn{stage}a", here, f"bot{stage}", label)
        graph.add_edge(f"dn{stage}b", f"bot{stage}", there, label)
    return graph


def parallel_chain(stages: int, width: int = 2, label: Label = "a") -> EdgeLabeledGraph:
    """A chain of ``stages`` node pairs joined by ``width`` parallel edges.

    Like :func:`diamond_chain` this has ``width**stages`` paths from ``v0``
    to ``v<stages>``, but through *parallel edges* rather than disjoint
    routes — useful to exercise edge identity (all paths visit the same
    nodes and differ only in which parallel edge they take).
    """
    graph = EdgeLabeledGraph()
    graph.add_node("v0")
    for stage in range(stages):
        for lane in range(width):
            graph.add_edge(
                f"e{stage}_{lane}", f"v{stage}", f"v{stage + 1}", label
            )
    return graph


def dated_path(
    dates: Sequence[object],
    on: str = "edges",
    label: Label = "a",
    prop: str = "date",
) -> PropertyGraph:
    """A property-graph path whose ``date`` properties follow ``dates``.

    With ``on="edges"`` the i-th edge carries ``dates[i]`` — this builds the
    Example 3 witness (dates ``03-01, 04-01, 01-01, 02-01``) on which the
    naive two-edge-window GQL pattern wrongly accepts.  With ``on="nodes"``
    the i-th node carries ``dates[i]`` instead, for the node-side queries of
    Example 21.
    """
    if on not in ("edges", "nodes"):
        raise ValueError("on must be 'edges' or 'nodes'")
    graph = PropertyGraph()
    if on == "edges":
        graph.add_node("v0", label="N")
        for index, date in enumerate(dates):
            graph.add_node(f"v{index + 1}", label="N")
            graph.add_edge(
                f"e{index}",
                f"v{index}",
                f"v{index + 1}",
                label,
                properties={prop: date},
            )
    else:
        for index, date in enumerate(dates):
            graph.add_node(f"v{index}", label=label, properties={prop: date})
        for index in range(len(dates) - 1):
            graph.add_edge(f"e{index}", f"v{index}", f"v{index + 1}", label)
    return graph


def subset_sum_graph(numbers: Sequence[int], prop: str = "k") -> PropertyGraph:
    """The Section 5.2 subset-sum gadget.

    A path of nodes with *two* parallel edges between each consecutive pair:
    one carrying ``rho(e, k) = numbers[i]`` and one carrying ``0``.  A path
    from the first to the last node picks one edge per position, so the sums
    of ``k`` along paths are exactly the subset sums of ``numbers`` — which
    is why the innocuous-looking ``reduce``-equality query is NP-complete in
    data complexity.
    """
    graph = PropertyGraph()
    graph.add_node("v0", label="N")
    for index, number in enumerate(numbers):
        graph.add_node(f"v{index + 1}", label="N")
        graph.add_edge(
            f"pick{index}",
            f"v{index}",
            f"v{index + 1}",
            "a",
            properties={prop: number},
        )
        graph.add_edge(
            f"skip{index}",
            f"v{index}",
            f"v{index + 1}",
            "a",
            properties={prop: 0},
        )
    return graph


def self_loop_graph(
    a: int, b: int, c: int, loop_k: int = 1
) -> PropertyGraph:
    """The single-node graph of Section 5.2's Diophantine example.

    One node ``u`` labeled ``l`` with properties ``a``, ``b``, ``c`` and a
    self-loop ``e`` whose property ``k`` is ``loop_k``.  The two candidate
    semantics for ``shortest`` + condition disagree on this graph whenever
    ``u.a + u.b + u.c != 0`` but ``a*x^2 + b*x + c = 0`` has a positive
    integer root.
    """
    graph = PropertyGraph()
    graph.add_node("u", label="l", properties={"a": a, "b": b, "c": c})
    graph.add_edge("e", "u", "u", "a", properties={"k": loop_k})
    return graph


def random_graph(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[Label] = ("a", "b"),
    seed: int = 0,
) -> EdgeLabeledGraph:
    """A uniform random multigraph, deterministic for a given seed."""
    rng = random.Random(seed)
    graph = EdgeLabeledGraph()
    for index in range(num_nodes):
        graph.add_node(f"v{index}")
    for index in range(num_edges):
        src = f"v{rng.randrange(num_nodes)}"
        tgt = f"v{rng.randrange(num_nodes)}"
        graph.add_edge(f"e{index}", src, tgt, rng.choice(list(labels)))
    return graph


def random_transfer_network(
    accounts: int,
    transfers: int,
    seed: int = 0,
    blocked_fraction: float = 0.2,
    max_amount: int = 10_000_000,
) -> PropertyGraph:
    """A scaled-up random version of Figure 3 for benchmarking.

    Accounts carry ``owner`` and ``isBlocked`` properties; transfers carry
    ``amount`` and ``date``.  Dates are drawn from a 2025 calendar so that
    lexicographic order equals chronological order.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    for index in range(accounts):
        graph.add_node(
            f"a{index}",
            label="Account",
            properties={
                "owner": f"person{index}",
                "isBlocked": "yes" if rng.random() < blocked_fraction else "no",
            },
        )
    for index in range(transfers):
        src = f"a{rng.randrange(accounts)}"
        tgt = f"a{rng.randrange(accounts)}"
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 29)
        graph.add_edge(
            f"t{index}",
            src,
            tgt,
            "Transfer",
            properties={
                "amount": rng.randrange(1, max_amount),
                "date": f"2025-{month:02d}-{day:02d}",
            },
        )
    return graph
