"""JSON (de)serialization for graphs.

The format is a straightforward document::

    {
      "kind": "property",              # or "edge_labeled"
      "nodes": [{"id": ..., "label": ..., "properties": {...}}, ...],
      "edges": [{"id": ..., "src": ..., "tgt": ..., "label": ...,
                 "properties": {...}}, ...]
    }

Only JSON-representable ids, labels and values survive a round-trip; that is
all the datasets and generators in this library produce.

Property maps need one wrinkle: ``rho``'s domain is *hashable names*, not
strings, but a JSON object coerces every key to a string (``{1: "x"}``
serializes as ``{"1": "x"}``).  Whenever an object carries a non-string
property name the serializer therefore emits ``"property_items"`` — a list
of ``[name, value]`` pairs, which JSON preserves exactly — instead of a
``"properties"`` object.  The reader accepts both spellings (preferring
``property_items``), so documents written by older versions still load.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import GraphError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.property_graph import PropertyGraph


def _set_properties(record: dict[str, Any], props: dict[Any, Any]) -> None:
    if all(isinstance(name, str) for name in props):
        record["properties"] = props
    else:
        record["property_items"] = [[name, value] for name, value in props.items()]


def _get_properties(record: dict[str, Any]) -> dict[Any, Any] | None:
    items = record.get("property_items")
    if items is not None:
        return {name: value for name, value in items}
    return record.get("properties")


def graph_to_dict(graph: EdgeLabeledGraph) -> dict[str, Any]:
    """Serialize a graph to a JSON-compatible dictionary."""
    is_property = isinstance(graph, PropertyGraph)
    nodes = []
    for node in sorted(graph.iter_nodes(), key=repr):
        record: dict[str, Any] = {"id": node}
        if is_property:
            record["label"] = graph.node_label(node)
            props = graph.properties(node)
            if props:
                _set_properties(record, props)
        nodes.append(record)
    edges = []
    for edge in sorted(graph.iter_edges(), key=repr):
        src, tgt = graph.endpoints(edge)
        record = {"id": edge, "src": src, "tgt": tgt, "label": graph.label(edge)}
        if is_property:
            props = graph.properties(edge)
            if props:
                _set_properties(record, props)
        edges.append(record)
    return {
        "kind": "property" if is_property else "edge_labeled",
        "nodes": nodes,
        "edges": edges,
    }


def graph_from_dict(document: dict[str, Any]) -> EdgeLabeledGraph:
    """Deserialize a graph from the dictionary format of :func:`graph_to_dict`."""
    kind = document.get("kind", "edge_labeled")
    if kind == "property":
        graph: EdgeLabeledGraph = PropertyGraph()
        for record in document.get("nodes", ()):
            graph.add_node(
                record["id"],
                label=record.get("label"),
                properties=_get_properties(record),
            )
        for record in document.get("edges", ()):
            graph.add_edge(
                record["id"],
                record["src"],
                record["tgt"],
                record["label"],
                properties=_get_properties(record),
            )
    elif kind == "edge_labeled":
        graph = EdgeLabeledGraph()
        for record in document.get("nodes", ()):
            graph.add_node(record["id"])
        for record in document.get("edges", ()):
            graph.add_edge(record["id"], record["src"], record["tgt"], record["label"])
    else:
        raise GraphError(f"unknown graph kind {kind!r}")
    return graph


def dumps(graph: EdgeLabeledGraph, **json_kwargs: Any) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), **json_kwargs)


def loads(text: str) -> EdgeLabeledGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
