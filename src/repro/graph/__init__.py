"""Graph data model substrate (Section 2 of the paper).

This package implements the two data models the paper builds on:

* :class:`~repro.graph.edge_labeled.EdgeLabeledGraph` — Definition 4,
  edge-labeled graphs with first-class edge identifiers;
* :class:`~repro.graph.property_graph.PropertyGraph` — Definition 6,
  labeled property graphs with labels on nodes *and* edges and a partial
  property function rho;

together with the path machinery of Section 2 ("Paths and Lists"):

* :class:`~repro.graph.paths.Path` — paths that may start and end with either
  a node or an edge, with the paper's *collapsing* concatenation;
* :mod:`~repro.graph.bindings` — list-valued bindings mu and value
  assignments nu used by the semantics in Section 3.

Concrete graphs from the paper (Figures 2 and 3) live in
:mod:`~repro.graph.datasets`, synthetic families (Figure 5, cliques, ...) in
:mod:`~repro.graph.generators`.
"""

from repro.graph.edge_labeled import EdgeLabeledGraph, ObjectKind
from repro.graph.property_graph import PropertyGraph
from repro.graph.paths import Path
from repro.graph.bindings import ListBinding, ValueAssignment
from repro.graph import datasets, generators

__all__ = [
    "EdgeLabeledGraph",
    "PropertyGraph",
    "ObjectKind",
    "Path",
    "ListBinding",
    "ValueAssignment",
    "datasets",
    "generators",
]
