"""Bindings used by the semantics of Section 3.

Two kinds of partial mappings appear in the paper:

* *list bindings* ``mu`` (Section 3.1.4) map variables to **lists of graph
  objects**; they are total on Var but map all except finitely many
  variables to the empty list, which makes their pointwise concatenation
  ``mu1 . mu2`` well-defined;
* *value assignments* ``nu`` (Section 3.2.1) are partial mappings from data
  variables to property values, updated functionally via ``nu[x -> c]``.

Both are immutable value objects here, so they are safely shareable across
search states in the engines.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

Var = Hashable
Value = Hashable
ObjectId = Hashable


class ListBinding:
    """A total mapping from variables to lists, almost everywhere empty.

    Only the finitely many variables with non-empty lists are stored;
    ``binding[z]`` returns ``()`` for every other variable, matching the
    paper's convention that ``mu0(z) = list()`` for all ``z``.
    """

    __slots__ = ("_lists", "_hash")

    def __init__(self, lists: Mapping[Var, tuple[ObjectId, ...]] | None = None):
        stored = {}
        if lists:
            for var, values in lists.items():
                values = tuple(values)
                if values:
                    stored[var] = values
        self._lists: dict[Var, tuple[ObjectId, ...]] = stored
        self._hash = hash(frozenset(stored.items()))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ListBinding":
        """``mu0`` — every variable maps to the empty list."""
        return _EMPTY_BINDING

    @classmethod
    def singleton(cls, var: Var, obj: ObjectId) -> "ListBinding":
        """``mu_{z -> o}`` — ``var`` maps to ``list(obj)``, all others to ``list()``."""
        return cls({var: (obj,)})

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, var: Var) -> tuple[ObjectId, ...]:
        return self._lists.get(var, ())

    def get(self, var: Var) -> tuple[ObjectId, ...]:
        return self._lists.get(var, ())

    @property
    def support(self) -> frozenset[Var]:
        """The variables bound to a non-empty list."""
        return frozenset(self._lists)

    def items(self) -> Iterator[tuple[Var, tuple[ObjectId, ...]]]:
        """Iterate over the (variable, list) pairs with non-empty lists."""
        return iter(self._lists.items())

    def as_dict(self) -> dict[Var, tuple[ObjectId, ...]]:
        """A plain-dict copy of the non-empty part of the binding."""
        return dict(self._lists)

    def restrict(self, variables) -> "ListBinding":
        """The binding with all variables outside ``variables`` zeroed out."""
        keep = set(variables)
        return ListBinding(
            {var: values for var, values in self._lists.items() if var in keep}
        )

    # ------------------------------------------------------------------
    # concatenation
    # ------------------------------------------------------------------
    def concat(self, other: "ListBinding") -> "ListBinding":
        """Pointwise list concatenation ``(mu1 . mu2)(z) = mu1(z) . mu2(z)``."""
        if not other._lists:
            return self
        if not self._lists:
            return other
        merged = dict(self._lists)
        for var, values in other._lists.items():
            merged[var] = merged.get(var, ()) + values
        return ListBinding(merged)

    def __mul__(self, other: "ListBinding") -> "ListBinding":
        return self.concat(other)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListBinding):
            return NotImplemented
        return self._lists == other._lists

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        """Truthy iff some variable is bound to a non-empty list."""
        return bool(self._lists)

    def __repr__(self) -> str:
        if not self._lists:
            return "mu0"
        inner = ", ".join(
            f"{var!r}: list({', '.join(repr(o) for o in values)})"
            for var, values in sorted(self._lists.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"


_EMPTY_BINDING = ListBinding()


class ValueAssignment:
    """An immutable partial mapping from data variables to values (``nu``).

    ``assignment.set(x, c)`` returns the updated assignment ``nu[x -> c]``
    without mutating the original, which is how the dl-RPQ semantics of
    Section 3.2.1 threads assignments through a match.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[Var, Value] | None = None):
        self._values: dict[Var, Value] = dict(values) if values else {}
        self._hash = hash(frozenset(self._values.items()))

    @classmethod
    def empty(cls) -> "ValueAssignment":
        """``nu0`` — the assignment with empty domain."""
        return _EMPTY_ASSIGNMENT

    def set(self, var: Var, value: Value) -> "ValueAssignment":
        """The functional update ``nu[var -> value]``."""
        updated = dict(self._values)
        updated[var] = value
        return ValueAssignment(updated)

    def __getitem__(self, var: Var) -> Value:
        return self._values[var]

    def get(self, var: Var, default: Value | None = None) -> Value | None:
        return self._values.get(var, default)

    def __contains__(self, var: Var) -> bool:
        return var in self._values

    @property
    def domain(self) -> frozenset[Var]:
        return frozenset(self._values)

    def as_dict(self) -> dict[Var, Value]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueAssignment):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._values:
            return "nu0"
        inner = ", ".join(
            f"{var!r}={value!r}"
            for var, value in sorted(self._values.items(), key=lambda kv: repr(kv[0]))
        )
        return f"nu({inner})"


_EMPTY_ASSIGNMENT = ValueAssignment()
