"""Edge-labeled graphs (Definition 4 of the paper).

An edge-labeled graph is a tuple ``(N, E, src, tgt, lambda)`` where ``N`` is a
finite set of node identifiers, ``E`` a finite set of edge identifiers
(disjoint from ``N``), ``src`` and ``tgt`` are total functions from edges to
nodes, and ``lambda`` assigns a label to every edge.

Unlike RDF-style triple sets, edges are first-class citizens: two parallel
edges with the same label and endpoints are distinct objects (the paper's
t2 and t5 between a3 and a2 in Figure 2 are the canonical example).
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterable, Iterator

from repro.errors import DuplicateObjectError, UnknownObjectError

ObjectId = Hashable
Label = Hashable


class ObjectKind(enum.Enum):
    """Whether a graph object is a node or an edge.

    The paper calls nodes and edges collectively *objects* (GQL and SQL/PGQ
    call them *elements*); many semantics in Section 3.2 treat the two kinds
    symmetrically, so code frequently needs to branch on the kind.
    """

    NODE = "node"
    EDGE = "edge"


class EdgeLabeledGraph:
    """A finite directed multigraph with labeled, identifiable edges.

    Node and edge identifiers share a single namespace: an id cannot denote
    both a node and an edge.  This mirrors the paper's assumption that
    ``Nodes`` and ``Edges`` are disjoint and lets a :class:`Path` hold a flat
    sequence of object ids.

    The graph is mutable while being built (``add_node`` / ``add_edge``) and
    treated as read-only by every query engine in the library.
    """

    __slots__ = (
        "_nodes",
        "_edges",
        "_out",
        "_in",
        "_labels_seen",
        "_version",
        "_journal",
        "_engine_index",
        "_engine_reversed",
        "_engine_csr",
    )

    def __init__(self) -> None:
        self._nodes: set[ObjectId] = set()
        # edge id -> (src, tgt, label)
        self._edges: dict[ObjectId, tuple[ObjectId, ObjectId, Label]] = {}
        # adjacency: node -> list of outgoing / incoming edge ids
        self._out: dict[ObjectId, list[ObjectId]] = {}
        self._in: dict[ObjectId, list[ObjectId]] = {}
        self._labels_seen: set[Label] = set()
        # Monotone mutation counter; derived structures (the engine's label
        # index, in particular) record the version they were built at and
        # rebuild when it moves.  Every mutating method must call _touch().
        self._version: int = 0
        # Optional mutation sink ``(op, payload, version) -> None`` installed
        # by the storage tier (GraphStore.attach) to journal in-place
        # mutations.  ``None`` for purely in-memory graphs; mutators must
        # emit exactly one record per observable state change.
        self._journal = None
        self._engine_index = None
        self._engine_reversed = None
        self._engine_csr = None

    # ------------------------------------------------------------------
    # mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: increases on every change to the graph."""
        return self._version

    def _touch(self) -> None:
        """Record a mutation, invalidating any cached derived structure."""
        self._version += 1
        self._engine_index = None
        self._engine_reversed = None
        self._engine_csr = None

    def attach_journal(self, sink) -> None:
        """Install a mutation sink called as ``sink(op, payload, version)``.

        The storage tier uses this to capture in-place mutations for its
        append-only journal; the sink must be cheap (the hot mutation path
        pays for it) and must not mutate the graph.
        """
        self._journal = sink

    def detach_journal(self) -> None:
        self._journal = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: ObjectId) -> ObjectId:
        """Add a node; adding an existing node is a no-op.

        Raises :class:`DuplicateObjectError` if the id already names an edge.
        """
        if node in self._edges:
            raise DuplicateObjectError(f"{node!r} is already an edge id")
        if node not in self._nodes:
            self._nodes.add(node)
            self._out[node] = []
            self._in[node] = []
            self._touch()
            if self._journal is not None:
                self._journal("add_node", (node, None, None), self._version)
        return node

    def add_edge(
        self, edge: ObjectId, src: ObjectId, tgt: ObjectId, label: Label
    ) -> ObjectId:
        """Add a directed edge ``src -> tgt`` with the given label.

        Endpoint nodes are created on demand.  Edge ids must be fresh: the
        paper's model gives every edge its own identity, so re-adding an edge
        id (even with identical endpoints) raises
        :class:`DuplicateObjectError`.
        """
        if edge in self._edges or edge in self._nodes:
            raise DuplicateObjectError(f"object id {edge!r} already in use")
        self.add_node(src)
        self.add_node(tgt)
        self._edges[edge] = (src, tgt, label)
        self._out[src].append(edge)
        self._in[tgt].append(edge)
        self._labels_seen.add(label)
        self._touch()
        if self._journal is not None:
            self._journal("add_edge", (edge, src, tgt, label, None), self._version)
        return edge

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[ObjectId]:
        """The node set ``N`` (as an immutable snapshot)."""
        return frozenset(self._nodes)

    @property
    def edges(self) -> frozenset[ObjectId]:
        """The edge set ``E`` (as an immutable snapshot)."""
        return frozenset(self._edges)

    def iter_nodes(self) -> Iterator[ObjectId]:
        """Iterate over node ids without copying the node set."""
        return iter(self._nodes)

    def iter_edges(self) -> Iterator[ObjectId]:
        """Iterate over edge ids without copying the edge set."""
        return iter(self._edges)

    def iter_edge_records(
        self,
    ) -> Iterator[tuple[ObjectId, ObjectId, ObjectId, Label]]:
        """Iterate ``(edge, src, tgt, label)`` records in one dict traversal.

        The engine's label index and the pattern evaluators use this instead
        of per-edge ``endpoints``/``label`` lookups.
        """
        for edge, (src, tgt, label) in self._edges.items():
            yield (edge, src, tgt, label)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def labels(self) -> frozenset[Label]:
        """All edge labels that occur in the graph."""
        return frozenset(self._labels_seen)

    def has_node(self, obj: ObjectId) -> bool:
        return obj in self._nodes

    def has_edge(self, obj: ObjectId) -> bool:
        return obj in self._edges

    def has_object(self, obj: ObjectId) -> bool:
        return obj in self._nodes or obj in self._edges

    def kind(self, obj: ObjectId) -> ObjectKind:
        """Return whether ``obj`` is a node or an edge.

        Raises :class:`UnknownObjectError` for foreign ids.
        """
        if obj in self._nodes:
            return ObjectKind.NODE
        if obj in self._edges:
            return ObjectKind.EDGE
        raise UnknownObjectError(f"{obj!r} is not an object of this graph")

    def src(self, edge: ObjectId) -> ObjectId:
        """The source node of an edge (the total function ``src``)."""
        return self._edge_record(edge)[0]

    def tgt(self, edge: ObjectId) -> ObjectId:
        """The target node of an edge (the total function ``tgt``)."""
        return self._edge_record(edge)[1]

    def label(self, edge: ObjectId) -> Label:
        """The label of an edge (the total function ``lambda``)."""
        return self._edge_record(edge)[2]

    def endpoints(self, edge: ObjectId) -> tuple[ObjectId, ObjectId]:
        """``(src, tgt)`` of an edge in one lookup."""
        record = self._edge_record(edge)
        return record[0], record[1]

    def _edge_record(self, edge: ObjectId) -> tuple[ObjectId, ObjectId, Label]:
        try:
            return self._edges[edge]
        except KeyError:
            raise UnknownObjectError(f"{edge!r} is not an edge of this graph") from None

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def out_edges(
        self, node: ObjectId, label: Label | None = None
    ) -> Iterator[ObjectId]:
        """Iterate over edges leaving ``node``, optionally filtered by label."""
        if node not in self._nodes:
            raise UnknownObjectError(f"{node!r} is not a node of this graph")
        for edge in self._out[node]:
            if label is None or self._edges[edge][2] == label:
                yield edge

    def in_edges(
        self, node: ObjectId, label: Label | None = None
    ) -> Iterator[ObjectId]:
        """Iterate over edges entering ``node``, optionally filtered by label."""
        if node not in self._nodes:
            raise UnknownObjectError(f"{node!r} is not a node of this graph")
        for edge in self._in[node]:
            if label is None or self._edges[edge][2] == label:
                yield edge

    def edges_between(
        self, src: ObjectId, tgt: ObjectId, label: Label | None = None
    ) -> Iterator[ObjectId]:
        """Iterate over (parallel) edges from ``src`` to ``tgt``."""
        for edge in self.out_edges(src, label):
            if self._edges[edge][1] == tgt:
                yield edge

    def successors(self, node: ObjectId, label: Label | None = None) -> set[ObjectId]:
        """The set of nodes reachable from ``node`` by one edge."""
        return {self._edges[e][1] for e in self.out_edges(node, label)}

    def predecessors(
        self, node: ObjectId, label: Label | None = None
    ) -> set[ObjectId]:
        """The set of nodes with an edge into ``node``."""
        return {self._edges[e][0] for e in self.in_edges(node, label)}

    def out_degree(self, node: ObjectId) -> int:
        if node not in self._nodes:
            raise UnknownObjectError(f"{node!r} is not a node of this graph")
        return len(self._out[node])

    def in_degree(self, node: ObjectId) -> int:
        if node not in self._nodes:
            raise UnknownObjectError(f"{node!r} is not a node of this graph")
        return len(self._in[node])

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path(self, *objects: ObjectId):
        """Build a validated :class:`~repro.graph.paths.Path` in this graph.

        ``graph.path()`` is the empty path; ``graph.path("a1", "t1", "a3")``
        is the node-to-node path of Example 10.
        """
        from repro.graph.paths import Path

        return Path(self, tuple(objects))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def triples(self) -> Iterator[tuple[ObjectId, Label, ObjectId]]:
        """Iterate ``(src, label, tgt)`` triples — the classical RDF-ish view.

        Parallel same-labeled edges yield duplicate triples, which is exactly
        the information the triple view loses (Section 2 of the paper).
        """
        for src, tgt, label in self._edges.values():
            yield (src, label, tgt)

    def subgraph_by_labels(self, labels: Iterable[Label]) -> "EdgeLabeledGraph":
        """A new graph keeping all nodes but only edges with a label in ``labels``."""
        keep = set(labels)
        sub = EdgeLabeledGraph()
        for node in self._nodes:
            sub.add_node(node)
        for edge, (src, tgt, label) in self._edges.items():
            if label in keep:
                sub.add_edge(edge, src, tgt, label)
        return sub

    def reversed_copy(self) -> "EdgeLabeledGraph":
        """A new edge-labeled graph with every edge direction flipped.

        Edge ids and labels are preserved.  Property graphs also come back
        as plain edge-labeled graphs: this view exists for automata-style
        backward traversal, which only needs ``lambda|_E``.
        """
        flipped = EdgeLabeledGraph()
        for node in self._nodes:
            flipped.add_node(node)
        for edge, (src, tgt, label) in self._edges.items():
            flipped.add_edge(edge, tgt, src, label)
        return flipped

    def __contains__(self, obj: ObjectId) -> bool:
        return self.has_object(obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} nodes={len(self._nodes)} "
            f"edges={len(self._edges)} labels={len(self._labels_seen)}>"
        )
