"""The concrete graphs used throughout the paper (Figures 2 and 3).

The paper shows both figures only partially; the full edge map used here is
reverse-engineered from every example that mentions them, and each assignment
below is forced by at least one of those examples:

========  ===========  =========================================================
edge      endpoints    forced by
========  ===========  =========================================================
t1        a1 -> a3     Example 10 (``path(a1, t1, a3, t2)``), PMR cycle example
t2        a3 -> a2     Examples 5, 10, 16 (parallel to t5)
t3        a2 -> a4     Example 16 (``list(t2, t3)``)
t4        a5 -> a1     Example 17 (shortest Mike->Megan is ``list(t7, t4)``)
t5        a3 -> a2     Example 5 ("t2 and t5 are both from a3 to a2")
t6        a3 -> a4     Section 6.3 data-filter path ``(a3, t6, a4, t9, a6, t10, a5)``
t7        a3 -> a5     Example 17, Section 6.3 ("direct path path(a3, t7, a5)")
t8        a6 -> a3     Example 13 (``(a6, a3, a5)`` needs Transfer(a6, a3))
t9        a4 -> a6     Section 6.3 data-filter path
t10       a6 -> a5     Example 17 (shortest Jay->Rebecca is ``list(t10)``)
========  ===========  =========================================================

With these edges the Transfer-subgraph is strongly connected (Example 12),
CRPQ q1 of Example 13 returns exactly {(a3,a2,a4), (a6,a3,a5)}, and the only
unblocked Mike->Mike cycles loop through t7, t4, t1 (Section 6.4's PMR
example).
"""

from __future__ import annotations

from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.property_graph import PropertyGraph

#: ``(edge, src, tgt)`` for the ten Transfer edges shared by both figures.
TRANSFER_EDGES: tuple[tuple[str, str, str], ...] = (
    ("t1", "a1", "a3"),
    ("t2", "a3", "a2"),
    ("t3", "a2", "a4"),
    ("t4", "a5", "a1"),
    ("t5", "a3", "a2"),
    ("t6", "a3", "a4"),
    ("t7", "a3", "a5"),
    ("t8", "a6", "a3"),
    ("t9", "a4", "a6"),
    ("t10", "a6", "a5"),
)

#: Account owners.  a1/a3/a5 are stated in the paper; a6 -> Jay is the
#: assumption Example 17 makes explicitly; a2/a4 are free and filled in with
#: fresh names so every account has an owner.
OWNERS: dict[str, str] = {
    "a1": "Megan",
    "a2": "Kate",
    "a3": "Mike",
    "a4": "Chris",
    "a5": "Rebecca",
    "a6": "Jay",
}

#: Blocked status.  a4 blocked and a3/a5 unblocked are forced by Examples 13
#: (result (a4, Rebecca, no) via account a5) and 16 (r9/r10 targets) and by
#: the Section 6.4 PMR example (the t7-t4-t1 cycle avoids blocked accounts,
#: so a1 and a5 must be unblocked while every other cycle from a3 passes the
#: blocked a4).
BLOCKED: dict[str, str] = {
    "a1": "no",
    "a2": "no",
    "a3": "no",
    "a4": "yes",
    "a5": "no",
    "a6": "no",
}

#: Transfer amounts (in currency units) for Figure 3.  Chosen so that the
#: Section 6.3 data-filter walkthrough holds verbatim: the direct transfer t7
#: is large, the cheapest Mike->Rebecca path with one amount < 4_500_000 is
#: (t6, t9, t10), and finding *two* cheap transfers forces a cycle because
#: the only cheap edges are t6 and t1.
AMOUNTS: dict[str, int] = {
    "t1": 4_000_000,  # cheap
    "t2": 6_100_000,
    "t3": 5_500_000,
    "t4": 7_200_000,
    "t5": 8_300_000,
    "t6": 3_000_000,  # cheap
    "t7": 10_000_000,
    "t8": 9_400_000,
    "t9": 7_000_000,
    "t10": 9_000_000,
}

#: Transfer dates (ISO strings, lexicographically ordered = chronologically
#: ordered) used by the date-filter examples.
DATES: dict[str, str] = {
    "t1": "2025-01-03",
    "t2": "2025-01-05",
    "t3": "2025-01-08",
    "t4": "2025-01-11",
    "t5": "2025-01-14",
    "t6": "2025-01-17",
    "t7": "2025-01-20",
    "t8": "2025-01-23",
    "t9": "2025-01-26",
    "t10": "2025-01-29",
}

ACCOUNTS: tuple[str, ...] = ("a1", "a2", "a3", "a4", "a5", "a6")


def figure2_graph() -> EdgeLabeledGraph:
    """The edge-labeled graph of Figure 2.

    Accounts are connected by ``Transfer`` edges; each account has an
    ``owner`` edge to a person node, an ``isBlocked`` edge to ``yes``/``no``,
    and a ``type`` edge to the ``Account`` node (the figure shows nodes
    ``Account``, ``Megan``, ``Mike``, ``Rebecca``, ``no``, ...).
    """
    graph = EdgeLabeledGraph()
    for account in ACCOUNTS:
        graph.add_node(account)
    for edge, src, tgt in TRANSFER_EDGES:
        graph.add_edge(edge, src, tgt, "Transfer")
    for index, account in enumerate(ACCOUNTS, start=1):
        graph.add_edge(f"r{index}", account, OWNERS[account], "owner")
    # r9 (a3 -> no) and r10 (a4 -> yes) appear verbatim in Example 16.
    blocked_edge_ids = {
        "a1": "r11",
        "a2": "r12",
        "a3": "r9",
        "a4": "r10",
        "a5": "r13",
        "a6": "r14",
    }
    for account in ACCOUNTS:
        graph.add_edge(blocked_edge_ids[account], account, BLOCKED[account], "isBlocked")
    for index, account in enumerate(ACCOUNTS, start=1):
        graph.add_edge(f"ty{index}", account, "Account", "type")
    return graph


def figure3_graph() -> PropertyGraph:
    """The property graph of Figure 3.

    Accounts are ``Account``-labeled nodes with ``owner`` and ``isBlocked``
    properties; transfers are ``Transfer``-labeled edges with ``amount`` and
    ``date`` properties (Example 8: ``rho(a1, owner) = Megan``).
    """
    graph = PropertyGraph()
    for account in ACCOUNTS:
        graph.add_node(
            account,
            label="Account",
            properties={"owner": OWNERS[account], "isBlocked": BLOCKED[account]},
        )
    for edge, src, tgt in TRANSFER_EDGES:
        graph.add_edge(
            edge,
            src,
            tgt,
            "Transfer",
            properties={"amount": AMOUNTS[edge], "date": DATES[edge]},
        )
    return graph


def account_of(owner: str) -> str:
    """The account id owned by ``owner`` (inverse of :data:`OWNERS`)."""
    for account, name in OWNERS.items():
        if name == owner:
            return account
    raise KeyError(owner)
