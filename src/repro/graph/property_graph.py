"""Labeled property graphs (Definition 6 of the paper).

A labeled property graph extends an edge-labeled graph with

* a total label function ``lambda`` on nodes *and* edges, and
* a partial property function ``rho : (N ∪ E) × Properties → Values``.

Example 8 of the paper: in Figure 3, ``lambda(a1) = Account``,
``lambda(t1) = Transfer``, ``rho(a1, owner) = Megan``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.graph.edge_labeled import EdgeLabeledGraph, Label, ObjectId

PropertyName = Hashable
Value = Hashable

#: Sentinel distinguishing "property absent" from "property set to None".
_MISSING = object()


class PropertyGraph(EdgeLabeledGraph):
    """A property graph per Definition 6.

    Nodes carry a label too (``add_node`` takes one; it defaults to the
    conventional empty label ``""`` so that lambda stays total, matching
    Remark 7's single-label simplification).  Properties are set either at
    construction time (``properties=`` keyword) or later via
    :meth:`set_property`.
    """

    __slots__ = ("_node_labels", "_properties")

    #: Label used when a node is created without an explicit one (for
    #: instance implicitly through ``add_edge``).  Keeping lambda total is
    #: what Definition 6 requires.
    DEFAULT_NODE_LABEL: Label = ""

    def __init__(self) -> None:
        super().__init__()
        self._node_labels: dict[ObjectId, Label] = {}
        self._properties: dict[ObjectId, dict[PropertyName, Value]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: ObjectId,
        label: Label | None = None,
        properties: Mapping[PropertyName, Value] | None = None,
    ) -> ObjectId:
        """Add a node with an optional label and properties.

        Re-adding an existing node may *refine* it: a non-``None`` label
        overwrites the default label, and new properties are merged in.
        """
        journal = self._journal
        if journal is not None:
            # Suppress the base-class emission so the journal sees one
            # complete record (with label and properties) per call instead of
            # a bare node record followed by invisible refinements.
            self._journal = None
        before = self._version
        try:
            super().add_node(node)
            if label is not None:
                if self._node_labels.get(node, _MISSING) != label:
                    # Refining the label of an existing node is a mutation too:
                    # without this bump a node-label index built earlier would
                    # go stale (the base-class add_node no-ops for known nodes).
                    self._touch()
                self._node_labels[node] = label
            else:
                self._node_labels.setdefault(node, self.DEFAULT_NODE_LABEL)
            if properties:
                self._properties.setdefault(node, {}).update(properties)
                self._touch()
        finally:
            if journal is not None:
                self._journal = journal
        if journal is not None and self._version != before:
            journal(
                "add_node",
                (node, label, dict(properties) if properties else None),
                self._version,
            )
        return node

    def add_edge(
        self,
        edge: ObjectId,
        src: ObjectId,
        tgt: ObjectId,
        label: Label,
        properties: Mapping[PropertyName, Value] | None = None,
    ) -> ObjectId:
        """Add a labeled edge with optional properties."""
        journal = self._journal
        if journal is None:
            super().add_edge(edge, src, tgt, label)
            if properties:
                self._properties.setdefault(edge, {}).update(properties)
            return edge
        # Write-through hot path: the <15% bench_storage gate leaves no room
        # for the base-class call plus emission suppression, so the edge
        # insertion is inlined (mirroring EdgeLabeledGraph.add_edge) and the
        # endpoint handling only runs for genuinely new endpoints.  One
        # record per call: replaying add_edge recreates missing endpoints
        # with the same default labels the original auto-creation produced.
        if edge in self._edges or edge in self._nodes:
            raise DuplicateObjectError(f"object id {edge!r} already in use")
        if src not in self._nodes or tgt not in self._nodes:
            self._journal = None
            try:
                self.add_node(src)
                self.add_node(tgt)
            finally:
                self._journal = journal
        self._edges[edge] = (src, tgt, label)
        self._out[src].append(edge)
        self._in[tgt].append(edge)
        self._labels_seen.add(label)
        if properties:
            self._properties.setdefault(edge, {}).update(properties)
        self._touch()
        # The payload references the edge's live property dict instead of
        # copying it: batches encode at flush time, and any later property
        # change is itself a journaled record in the same or a later batch,
        # so replay still converges on the exact final state.
        journal(
            "add_edge",
            (edge, src, tgt, label, self._properties.get(edge)),
            self._version,
        )
        return edge

    def set_property(self, obj: ObjectId, name: PropertyName, value: Value) -> None:
        """Set ``rho(obj, name) = value`` for an existing node or edge."""
        if not self.has_object(obj):
            raise UnknownObjectError(f"{obj!r} is not an object of this graph")
        self._properties.setdefault(obj, {})[name] = value
        self._touch()
        if self._journal is not None:
            self._journal("set_property", (obj, name, value), self._version)

    # ------------------------------------------------------------------
    # lambda and rho
    # ------------------------------------------------------------------
    def object_label(self, obj: ObjectId) -> Label:
        """The total label function lambda on nodes and edges."""
        if self.has_edge(obj):
            return self.label(obj)
        if self.has_node(obj):
            return self._node_labels[obj]
        raise UnknownObjectError(f"{obj!r} is not an object of this graph")

    def node_label(self, node: ObjectId) -> Label:
        """The label of a node (raises for edges and foreign ids)."""
        if node not in self._node_labels:
            raise UnknownObjectError(f"{node!r} is not a node of this graph")
        return self._node_labels[node]

    def get_property(
        self, obj: ObjectId, name: PropertyName, default: Value | None = None
    ) -> Value | None:
        """``rho(obj, name)``, or ``default`` when the property is undefined.

        ``rho`` is a partial function: nodes and edges need not define every
        property, and engines treat an undefined property as a failed test
        (never as an error).
        """
        if not self.has_object(obj):
            raise UnknownObjectError(f"{obj!r} is not an object of this graph")
        props = self._properties.get(obj)
        if props is None:
            return default
        value = props.get(name, _MISSING)
        if value is _MISSING:
            return default
        return value

    def has_property(self, obj: ObjectId, name: PropertyName) -> bool:
        """Whether ``rho(obj, name)`` is defined."""
        if not self.has_object(obj):
            raise UnknownObjectError(f"{obj!r} is not an object of this graph")
        return name in self._properties.get(obj, {})

    def properties(self, obj: ObjectId) -> dict[PropertyName, Value]:
        """A copy of all defined properties of an object."""
        if not self.has_object(obj):
            raise UnknownObjectError(f"{obj!r} is not an object of this graph")
        return dict(self._properties.get(obj, {}))

    def property_names(self) -> frozenset[PropertyName]:
        """All property names defined anywhere in the graph."""
        names: set[PropertyName] = set()
        for props in self._properties.values():
            names.update(props)
        return frozenset(names)

    def property_values(self, name: PropertyName) -> frozenset[Value]:
        """All values that property ``name`` takes in the graph.

        Register-automaton evaluation (Section 6.4) relies on the *active
        domain* being finite; this is how engines obtain it.
        """
        values: set[Value] = set()
        for props in self._properties.values():
            if name in props:
                values.add(props[name])
        return frozenset(values)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: Label) -> Iterator[ObjectId]:
        """Iterate over nodes carrying the given label."""
        for node, node_label in self._node_labels.items():
            if node_label == label:
                yield node

    def to_edge_labeled(self) -> EdgeLabeledGraph:
        """The underlying edge-labeled graph ``(N, E, src, tgt, lambda|_E)``.

        This is the projection noted after Definition 6 in the paper: drop
        node labels and all properties.
        """
        plain = EdgeLabeledGraph()
        for node in self.iter_nodes():
            plain.add_node(node)
        for edge in self.iter_edges():
            src, tgt = self.endpoints(edge)
            plain.add_edge(edge, src, tgt, self.label(edge))
        return plain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PropertyGraph nodes={self.num_nodes} edges={self.num_edges} "
            f"properties={len(self.property_names())}>"
        )
