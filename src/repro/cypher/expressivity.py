"""The Proposition 22 apparatus: ``(ll)*`` is not a Cypher-fragment pattern.

Over a single-label alphabet, the endpoint-pair relation of any fragment
pattern on a simple path graph depends only on the *distance* between the
endpoints, and the set of matched distances is easy to characterize
symbolically:

* a node atom matches distance 0; an edge atom distance 1;
* a star matches any distance >= 0;
* a sequence adds distances; a union unites distance sets.

Hence every fragment pattern's distance set is a **finite union of
singletons {c} and upward-closed sets {c, c+1, ...}** — we call these
*semilinear-with-period-one* sets and represent them as ``(offset, open)``
atoms.  The even numbers {0, 2, 4, ...} are not of this shape: any
upward-closed member would include odd distances, and finitely many
singletons cannot cover infinitely many evens.

:func:`search_for_even_length_pattern` turns this into an *empirical*
demonstration: it enumerates every distance-set shape realizable by
fragment patterns up to a size bound and reports the disagreement witness
(a distance) for each, so the inexpressibility can be checked mechanically
rather than taken on faith.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from repro.cypher.fragment import (
    CypherEdge,
    CypherNode,
    CypherPattern,
    CypherSeq,
    CypherStar,
    CypherUnion,
)

#: A distance-set atom: (offset, open_ended).  (3, False) is {3};
#: (3, True) is {3, 4, 5, ...}.
DistanceAtom = tuple


def distance_set(pattern: CypherPattern) -> frozenset[DistanceAtom]:
    """The symbolic distance set of a fragment pattern over one label.

    Returns a set of ``(offset, open)`` atoms whose union is the set of
    endpoint distances the pattern matches on single-label path graphs.
    """
    if isinstance(pattern, CypherNode):
        return frozenset({(0, False)})
    if isinstance(pattern, CypherEdge):
        return frozenset({(1, False)})
    if isinstance(pattern, CypherStar):
        return frozenset({(0, True)})
    if isinstance(pattern, CypherSeq):
        current: frozenset = frozenset({(0, False)})
        for part in pattern.parts:
            step = distance_set(part)
            current = frozenset(
                (offset1 + offset2, open1 or open2)
                for (offset1, open1) in current
                for (offset2, open2) in step
            )
        return _normalize(current)
    if isinstance(pattern, CypherUnion):
        atoms: set = set()
        for part in pattern.parts:
            atoms |= distance_set(part)
        return _normalize(atoms)
    raise TypeError(f"not a Cypher fragment pattern: {pattern!r}")


def _normalize(atoms) -> frozenset[DistanceAtom]:
    """Drop atoms subsumed by an open atom with smaller offset."""
    open_offsets = [offset for offset, is_open in atoms if is_open]
    if not open_offsets:
        return frozenset(atoms)
    threshold = min(open_offsets)
    kept = {(threshold, True)}
    for offset, is_open in atoms:
        if not is_open and offset < threshold:
            kept.add((offset, False))
    return frozenset(kept)


def atoms_match(atoms, distance: int) -> bool:
    """Whether a distance belongs to the union of the atoms."""
    for offset, is_open in atoms:
        if distance == offset or (is_open and distance >= offset):
            return True
    return False


def enumerate_fragment_shapes(max_offset: int, max_atoms: int):
    """Every distance-set shape a fragment pattern can denote, up to bounds.

    A shape is a set of at most ``max_atoms`` atoms with offsets up to
    ``max_offset``.  By the :func:`distance_set` characterization this
    covers *all* fragment patterns whose sequences are at most
    ``max_offset`` atoms long and whose unions have at most ``max_atoms``
    branches — in particular all patterns of size <= min(max_offset,
    max_atoms).
    """
    atom_pool = [
        (offset, is_open)
        for offset in range(max_offset + 1)
        for is_open in (False, True)
    ]
    seen = set()
    for count in range(1, max_atoms + 1):
        for combo in combinations_with_replacement(atom_pool, count):
            shape = _normalize(frozenset(combo))
            if shape not in seen:
                seen.add(shape)
                yield shape


def even_distance_counterexample(atoms, horizon: int) -> "int | None":
    """The smallest distance <= horizon on which the atoms disagree with
    the even-length language of ``(ll)*`` (None if they agree up to it)."""
    for distance in range(horizon + 1):
        expected = distance % 2 == 0
        if atoms_match(atoms, distance) != expected:
            return distance
    return None


def search_for_even_length_pattern(
    max_offset: int = 6, max_atoms: int = 4
) -> dict:
    """Exhaustively refute ``(ll)*`` against all bounded fragment shapes.

    Returns a report with the number of shapes tried and, for each, the
    smallest disagreeing distance.  ``report["expressible"]`` is True iff
    some shape matched the even distances on the whole test horizon —
    Proposition 22 predicts it never is.
    """
    horizon = 2 * max_offset + 3
    tried = 0
    witnesses: dict = {}
    for shape in enumerate_fragment_shapes(max_offset, max_atoms):
        tried += 1
        witness = even_distance_counterexample(shape, horizon)
        if witness is None:
            return {"expressible": True, "tried": tried, "shape": shape}
        witnesses[shape] = witness
    return {
        "expressible": False,
        "tried": tried,
        "horizon": horizon,
        "witnesses": witnesses,
    }


def star_distance_sanity() -> bool:
    """Sanity check used by tests: ``l*`` IS expressible (shape {(0, True)})
    and indeed matches every distance."""
    atoms = distance_set(CypherStar(frozenset({"l"})))
    return all(atoms_match(atoms, d) for d in range(20))
