"""The Cypher pattern fragment and its expressivity limits (Section 5.1).

Cypher (unlike GQL/SQL-PGQ) only allows repetition on edge labels or their
disjunctions — ``-[:L*]->`` — never on larger subpatterns.
:mod:`~repro.cypher.fragment` models exactly that fragment;
:mod:`~repro.cypher.expressivity` provides the Proposition 22 apparatus
showing that the RPQ ``(ll)*`` is not expressible in it: a symbolic
distance-set analysis plus a bounded exhaustive search over all fragment
patterns.
"""

from repro.cypher.fragment import (
    CypherEdge,
    CypherNode,
    CypherSeq,
    CypherStar,
    CypherUnion,
    cypher_pairs,
    parse_cypher_pattern,
)
from repro.cypher.expressivity import (
    distance_set,
    enumerate_fragment_shapes,
    even_distance_counterexample,
    search_for_even_length_pattern,
)

__all__ = [
    "CypherNode",
    "CypherEdge",
    "CypherStar",
    "CypherSeq",
    "CypherUnion",
    "parse_cypher_pattern",
    "cypher_pairs",
    "distance_set",
    "enumerate_fragment_shapes",
    "search_for_even_length_pattern",
    "even_distance_counterexample",
]
