"""The Cypher pattern fragment of Section 5.1.

Adapting the Section 4 pattern language as the paper does::

    pi := (x:L) | -x:L-> | -:L*-> | pi1 pi2 | pi1 + pi2

where every ``L`` is a disjunction of labels ``l1|l2|...|ln`` (an absent
label list means the wildcard).  Crucially, the star applies *only* to
label disjunctions, not to arbitrary subpatterns — that is Cypher's
historic restriction, and the reason ``(ll)*`` escapes the fragment
(Proposition 22).

Since Proposition 22 is about pure reachability, the semantics we expose is
the endpoint-pair relation (conditions and data play no role here).
"""

from __future__ import annotations

import re as _stdlib_re
from collections import deque
from dataclasses import dataclass

from repro.errors import ParseError
from repro.graph.edge_labeled import EdgeLabeledGraph, ObjectId


class CypherPattern:
    """Base class for fragment patterns."""

    __slots__ = ()


@dataclass(frozen=True)
class CypherNode(CypherPattern):
    """``(x:L)`` — matches any node (labels on nodes are ignored in the
    edge-labeled setting of Proposition 22; the variable is optional)."""

    var: object = None


@dataclass(frozen=True)
class CypherEdge(CypherPattern):
    """``-x:L->`` — one edge whose label is in ``labels`` (None = any)."""

    labels: "frozenset | None" = None
    var: object = None


@dataclass(frozen=True)
class CypherStar(CypherPattern):
    """``-:L*->`` — a path of zero or more edges with labels in ``labels``.

    This is the *only* repetition the fragment allows.
    """

    labels: "frozenset | None" = None


@dataclass(frozen=True)
class CypherSeq(CypherPattern):
    parts: tuple


@dataclass(frozen=True)
class CypherUnion(CypherPattern):
    parts: tuple


# ----------------------------------------------------------------------
# semantics: endpoint pairs
# ----------------------------------------------------------------------
def _label_ok(graph: EdgeLabeledGraph, edge, labels) -> bool:
    return labels is None or graph.label(edge) in labels


def cypher_pairs(
    pattern: CypherPattern, graph: EdgeLabeledGraph
) -> set[tuple[ObjectId, ObjectId]]:
    """The endpoint-pair relation of a fragment pattern."""
    if isinstance(pattern, CypherNode):
        return {(node, node) for node in graph.iter_nodes()}
    if isinstance(pattern, CypherEdge):
        return {
            graph.endpoints(edge)
            for edge in graph.iter_edges()
            if _label_ok(graph, edge, pattern.labels)
        }
    if isinstance(pattern, CypherStar):
        pairs = set()
        for source in graph.iter_nodes():
            seen = {source}
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for edge in graph.out_edges(node):
                    if not _label_ok(graph, edge, pattern.labels):
                        continue
                    target = graph.tgt(edge)
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
            pairs.update((source, node) for node in seen)
        return pairs
    if isinstance(pattern, CypherSeq):
        current = cypher_pairs(pattern.parts[0], graph)
        for part in pattern.parts[1:]:
            step = cypher_pairs(part, graph)
            by_src: dict = {}
            for src, tgt in step:
                by_src.setdefault(src, set()).add(tgt)
            current = {
                (src1, tgt2)
                for src1, tgt1 in current
                for tgt2 in by_src.get(tgt1, ())
            }
        return current
    if isinstance(pattern, CypherUnion):
        pairs = set()
        for part in pattern.parts:
            pairs |= cypher_pairs(part, graph)
        return pairs
    raise TypeError(f"not a Cypher fragment pattern: {pattern!r}")


# ----------------------------------------------------------------------
# a small parser:  (x)-[:a|b]->()-[:a*]->(y)  and  pi + pi
# ----------------------------------------------------------------------
_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_TOKEN = _stdlib_re.compile(
    rf"""
    (?P<WS>\s+)
  | (?P<NODE>\(\s*(?:{_IDENT})?\s*\))
  | (?P<STAR_EDGE>-\[\s*:\s*{_IDENT}(?:\s*\|\s*{_IDENT})*\s*\*\s*\]->)
  | (?P<EDGE>-\[\s*(?:{_IDENT})?\s*(?::\s*{_IDENT}(?:\s*\|\s*{_IDENT})*)?\s*\]->)
  | (?P<ARROW>->)
  | (?P<PLUS>\+)
""",
    _stdlib_re.VERBOSE,
)
_LABELS = _stdlib_re.compile(rf"{_IDENT}")


def parse_cypher_pattern(text: str) -> CypherPattern:
    """Parse fragment patterns like ``(x)-[:a*]->(y)`` or
    ``(x)-[:a]->(y) + (x)-[:b]->(y)``.

    Only the fragment is accepted: stars occur inside edge brackets, never
    around subpatterns.
    """
    alternatives: list[CypherPattern] = []
    parts: list[CypherPattern] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at {position} "
                "in Cypher fragment pattern"
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind == "WS":
            continue
        if kind == "NODE":
            var = value.strip("() \t") or None
            parts.append(CypherNode(var))
        elif kind == "STAR_EDGE":
            labels = frozenset(_LABELS.findall(value))
            parts.append(CypherStar(labels))
        elif kind == "EDGE":
            inner = value[2:-3]
            if ":" in inner:
                var_text, label_text = inner.split(":", 1)
                labels = frozenset(_LABELS.findall(label_text)) or None
            else:
                var_text, labels = inner, None
            parts.append(CypherEdge(labels, var_text.strip() or None))
        elif kind == "ARROW":
            parts.append(CypherEdge(None, None))
        elif kind == "PLUS":
            if not parts:
                raise ParseError("empty alternative in Cypher fragment pattern")
            alternatives.append(
                parts[0] if len(parts) == 1 else CypherSeq(tuple(parts))
            )
            parts = []
    if not parts:
        raise ParseError("empty Cypher fragment pattern")
    alternatives.append(parts[0] if len(parts) == 1 else CypherSeq(tuple(parts)))
    if len(alternatives) == 1:
        return alternatives[0]
    return CypherUnion(tuple(alternatives))
