"""Experiment result container and plain-text report rendering."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one figure/example/claim of the paper).

    ``rows`` is a list of dicts sharing keys — the "same rows/series the
    paper reports"; ``claim`` quotes or paraphrases what the paper says;
    ``finding`` states what we measured.
    """

    experiment_id: str
    title: str
    claim: str
    rows: list = field(default_factory=list)
    finding: str = ""

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.claim}",
        ]
        if self.rows:
            lines.append(render_table(self.rows))
        if self.finding:
            lines.append(f"measured: {self.finding}")
        return "\n".join(lines)


def render_table(rows: list) -> str:
    """Align a list of dicts into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(_cell(row, column)) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(_cell(row, column).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def _cell(row: dict, column) -> str:
    value = row.get(column, "")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
