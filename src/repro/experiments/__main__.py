"""Command-line entry point: ``python -m repro.experiments <id>|all|--list``."""

from __future__ import annotations

import sys

from repro.experiments import REGISTRY, run_all, run_experiment


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(sorted(REGISTRY, key=lambda k: int(k[1:]))))
        return 0
    if argv[0] == "--list":
        for key in sorted(REGISTRY, key=lambda k: int(k[1:])):
            print(key, "-", REGISTRY[key].__doc__.strip().splitlines()[0])
        return 0
    if argv[0].lower() == "all":
        for result in run_all():
            print(result.render())
            print()
        return 0
    try:
        result = run_experiment(argv[0])
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
