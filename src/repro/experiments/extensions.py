"""Experiments E28–E32: the paper's flagged extensions and open directions.

These go beyond the paper's own figures: they exercise features the paper
explicitly points to as next steps — the Section 4.2 deduplication quirk,
Section 7.1's static analysis and difference enumeration, and Remark 9's
two-way paths.
"""

from __future__ import annotations

from repro.analysis.containment import (
    crpq_contained_sound,
    rpq_contained,
    rpq_equivalent,
)
from repro.analysis.structure import is_acyclic_crpq, treewidth_exact
from repro.crpq.ast import parse_crpq
from repro.experiments.runner import ExperimentResult
from repro.gql.forall import (
    all_values_distinct_via_forall,
    increasing_edges_via_forall,
)
from repro.gql.rows import naming_sensitivity
from repro.graph.datasets import figure2_graph
from repro.graph.generators import diamond_chain, parallel_chain
from repro.pmr.build import pmr_for_rpq
from repro.pmr.enumerate import enumerate_spaths_delta
from repro.rpq.twoway import evaluate_two_way_rpq


def e28_naming_quirk() -> ExperimentResult:
    """E28 / Section 4.2: results depend on whether a variable has a name."""
    rows = []
    for width in (2, 3, 4):
        graph = parallel_chain(1, width=width)
        report = naming_sensitivity(
            "(x)-[:a]->(y)", "(x)-[e:a]->(y)", graph
        )
        rows.append(
            {
                "parallel_edges": width,
                "rows_with_anonymous_edge": report["anonymous_rows"],
                "rows_with_named_edge": report["named_rows"],
                "bag_totals_agree": report["bag_totals_agree"],
            }
        )
    return ExperimentResult(
        experiment_id="E28",
        title="Section 4.2 — deduplication makes naming observable",
        claim="GQL's dedup + pattern matching interplay: 'query results "
        "depending on whether a variable was given a name or not'",
        rows=rows,
        finding="naming the edge multiplies distinct rows by the edge "
        "multiplicity while bag totals stay identical",
    )


def e29_containment_toolkit() -> ExperimentResult:
    """E29 / Section 7.1: the static-analysis toolkit on concrete queries."""
    rows = [
        {
            "check": "a.a ⊆ a*",
            "result": rpq_contained("a.a", "a*"),
            "expected": True,
        },
        {
            "check": "a* ⊆ (a.a)*",
            "result": rpq_contained("a*", "(a.a)*"),
            "expected": False,
        },
        {
            "check": "(((a*)*)*)* ≡ a*",
            "result": rpq_equivalent("(((a*)*)*)*", "a*"),
            "expected": True,
        },
        {
            "check": "q(x,y):-a(x,y) ⊇ q(x,y):-a(x,y),b(y,z)  (sound test)",
            "result": crpq_contained_sound(
                "q(x, y) :- a(x, y)", "q(x, y) :- a(x, y), b(y, z)"
            ),
            "expected": True,
        },
        {
            "check": "sound test misses composition witness (incomplete)",
            "result": crpq_contained_sound(
                "q(x, z) :- (a.a)(x, z)", "q(x, z) :- a(x, y), a(y, z)"
            ),
            "expected": False,
        },
    ]
    return ExperimentResult(
        experiment_id="E29",
        title="Section 7.1 — containment: decidable RPQ core, sound CRPQ test",
        claim="containment is the fundamental static analysis problem; "
        "RPQ containment is the decidable core, CRPQ containment needs more",
        rows=rows,
        finding="all checks behave as theory predicts: "
        + str(all(row["result"] == row["expected"] for row in rows)),
    )


def e30_structure_analysis() -> ExperimentResult:
    """E30 / Section 7.1: acyclicity and treewidth of the paper's queries."""
    queries = {
        "Example 13 q1 (transfer triangle)": (
            "q1(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), "
            "Transfer(x2, x3)"
        ),
        "Example 13 q2 (star join)": (
            "q2(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), "
            "(Transfer.Transfer?)(x, y)"
        ),
        "4-cycle": "q(x) :- a(x, y), a(y, z), a(z, w), a(w, x)",
        "path of 3": "q(x, w) :- a(x, y), a(y, z), a(z, w)",
    }
    rows = []
    for name, text in queries.items():
        query = parse_crpq(text)
        rows.append(
            {
                "query": name,
                "acyclic": is_acyclic_crpq(query),
                "treewidth": treewidth_exact(query),
            }
        )
    return ExperimentResult(
        experiment_id="E30",
        title="Section 7.1 — structural parameters behind tractability",
        claim="acyclic CRPQs evaluate Yannakakis-style; bounded (semantic) "
        "treewidth is the candidate FPT criterion",
        rows=rows,
        finding="the paper's own q1 is cyclic with treewidth 2; its q2 is "
        "acyclic (treewidth 1)",
    )


def e31_two_way_and_deltas() -> ExperimentResult:
    """E31 / Remark 9 + Section 7.1: two-way paths and delta enumeration."""
    graph = figure2_graph()
    same_owner = evaluate_two_way_rpq("~owner . Transfer . owner", graph)
    undirected = evaluate_two_way_rpq("(Transfer + ~Transfer)*", graph)

    g5 = diamond_chain(8)
    pmr = pmr_for_rpq("a*", g5, "j0", "j8")
    total_objects = 0
    total_suffix = 0
    count = 0
    for path, shared in enumerate_spaths_delta(pmr):
        total_objects += len(path.objects)
        total_suffix += len(path.objects) - shared
        count += 1
    rows = [
        {
            "feature": "two-way: ~owner.Transfer.owner (people whose "
            "accounts transact)",
            "value": len(same_owner),
        },
        {
            "feature": "two-way: undirected Transfer reachability pairs",
            "value": len(undirected),
        },
        {
            "feature": f"delta enumeration over {count} Figure-5 paths: "
            "objects sent whole",
            "value": total_objects,
        },
        {
            "feature": "delta enumeration: suffix objects actually needed",
            "value": total_suffix,
        },
    ]
    return ExperimentResult(
        experiment_id="E31",
        title="Remark 9 + Section 7.1 — two-way paths, difference enumeration",
        claim="the framework 'can easily be extended with two-way paths'; "
        "one could 'enumerate only the difference between consecutive "
        "outputs'",
        rows=rows,
        finding=(
            f"delta transmission saves "
            f"{100 * (1 - total_suffix / total_objects):.0f}% of the output "
            "volume on the Figure 5 family"
        ),
    )


def e32_forall_on_matched_paths() -> ExperimentResult:
    """E32 / Section 5.2: the <forall pi' => theta> proposal and its trap."""
    import time

    from repro.graph.generators import dated_path
    from repro.graph.property_graph import PropertyGraph

    witness = dated_path([3, 4, 1, 2], on="edges", prop="k")
    fixed = increasing_edges_via_forall(witness, "v0", "v4", prop="k")
    rows = [
        {
            "query": "increasing edges via forall (Example 3 witness)",
            "size": "4 edges",
            "result": f"{len(fixed)} paths (correctly rejected)",
            "seconds": 0.0,
        }
    ]
    # The NP-hard variant: all node values distinct, on graphs with many
    # candidate paths (two parallel routes per stage, like Figure 5).
    for stages in (3, 4, 5):
        graph = PropertyGraph()
        value = 0
        graph.add_node("j0", label="N", properties={"k": value})
        for stage in range(stages):
            for lane, tag in enumerate(("top", "bot")):
                value += 1
                graph.add_node(
                    f"{tag}{stage}", label="N", properties={"k": value}
                )
            graph.add_node(
                f"j{stage + 1}", label="N", properties={"k": value + 10 + stage}
            )
            graph.add_edge(f"u{stage}a", f"j{stage}", f"top{stage}", "a")
            graph.add_edge(f"u{stage}b", f"top{stage}", f"j{stage + 1}", "a")
            graph.add_edge(f"d{stage}a", f"j{stage}", f"bot{stage}", "a")
            graph.add_edge(f"d{stage}b", f"bot{stage}", f"j{stage + 1}", "a")
        start = time.perf_counter()
        distinct = all_values_distinct_via_forall(
            graph, "j0", f"j{stages}", prop="k"
        )
        seconds = time.perf_counter() - start
        rows.append(
            {
                "query": "all node values distinct (NP-hard in general)",
                "size": f"{stages} diamonds, {2 ** stages} paths",
                "result": f"{len(distinct)} qualifying paths",
                "seconds": seconds,
            }
        )
    return ExperimentResult(
        experiment_id="E32",
        title="Section 5.2 — matching on matched paths (<forall pi' => theta>)",
        claim="the GQL-committee proposal fixes increasing-edges, but a "
        "'slight variation' (all values distinct) is NP-hard in data "
        "complexity",
        rows=rows,
        finding="the benign query is instant; the all-distinct variation "
        "re-matches a quadratic subpattern on each of exponentially many "
        "paths — cost doubles per added diamond",
    )
