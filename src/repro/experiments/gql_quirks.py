"""Experiments E6–E9: the introduction's Examples 1–3 and Example 21."""

from __future__ import annotations

from repro.datatests.dlrpq import evaluate_dlrpq
from repro.experiments.runner import ExperimentResult
from repro.gql.semantics import match_gql_pattern
from repro.graph.generators import dated_path
from repro.graph.property_graph import PropertyGraph


def _example1_graph() -> PropertyGraph:
    graph = PropertyGraph()
    graph.add_edge("e0", "v0", "v1", "a")
    graph.add_edge("e1", "v1", "v2", "a")
    graph.add_edge("loop", "s", "s", "a")
    return graph


def e6_example1_inequivalence() -> ExperimentResult:
    """E6 / Example 1: pi{2} differs from both variable-based expansions."""
    graph = _example1_graph()
    patterns = {
        "(x) (()-[z:a]->()){2} (y)": None,
        "(x) ()-[z:a]->() ()-[z:a]->() (y)": None,
        "(x) ()-[z:a]->() ()-[z1:a]->() (y)": None,
    }
    rows = []
    endpoint_sets = {}
    for pattern in patterns:
        matches = match_gql_pattern(pattern, graph)
        endpoints = {(m.get("x"), m.get("y")) for m in matches}
        endpoint_sets[pattern] = endpoints
        sample = next(iter(matches), None)
        rows.append(
            {
                "pattern": pattern,
                "matches": len(matches),
                "z_kind": sample.kind_of("z") if sample else "-",
                "has_v0_v2": ("v0", "v2") in endpoints,
            }
        )
    iterated, joined, split = list(endpoint_sets.values())
    return ExperimentResult(
        experiment_id="E6",
        title="Example 1 — {2} is not equivalent to its expansions",
        claim="the first two variants join z (self-loops only); the third "
        "matches the same paths but binds z and z1 separately",
        rows=rows,
        finding=(
            f"iterated != joined: {iterated != joined}; "
            f"iterated endpoints == split endpoints: {iterated == split}"
        ),
    )


def e7_example2_group_roles() -> ExperimentResult:
    """E7 / Example 2: join inside one iteration, list across iterations."""
    graph = PropertyGraph()
    graph.add_edge("l0", "n0", "n0", "a")
    graph.add_edge("l1", "n1", "n1", "a")
    graph.add_edge("step", "n0", "n1", "a")
    graph.add_edge("step2", "n1", "n2", "a")
    matches = match_gql_pattern("((x)-[:a]->(x)-[:a]->()){1,2}", graph)
    groups = sorted({m.get("x") for m in matches}, key=repr)
    loop_nodes = {"n0", "n1"}
    all_loops = all(set(m.get("x")) <= loop_nodes for m in matches)
    return ExperimentResult(
        experiment_id="E7",
        title="Example 2 — one variable, two roles",
        claim="x joins within an iteration (self-loop required) and becomes "
        "a list of such nodes under the quantifier",
        rows=[{"x_group": str(group)} for group in groups],
        finding=f"every collected node has an a-self-loop: {all_loops}",
    )


def e8_example3_naive_where() -> ExperimentResult:
    """E8 / Example 3 + Prop. 23: the stepping-by-two WHERE is wrong."""
    witness = dated_path(["03-01", "04-01", "01-01", "02-01"], on="edges")
    naive = "(x) ( ()-[u:a]->()-[v:a]->() WHERE u.date < v.date)* (y)"
    naive_matches = match_gql_pattern(naive, witness)
    naive_accepts = ("v0", "v4") in {
        (m.get("x"), m.get("y")) for m in naive_matches
    }
    dlrpq = "[a][x := date] ( (_)[a][date > x][x := date] )*"
    dl_accepts = bool(
        list(evaluate_dlrpq(dlrpq, witness, "v0", "v4", mode="all"))
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Example 3 — naive consecutive-edge WHERE vs dl-RPQ",
        claim="the naive pattern matches the four-edge path with dates "
        "03-01, 04-01, 01-01, 02-01; the dl-RPQ rejects it",
        rows=[
            {
                "engine": "GQL naive window-of-two",
                "accepts_bad_witness": naive_accepts,
            },
            {"engine": "dl-RPQ (Example 21)", "accepts_bad_witness": dl_accepts},
        ],
        finding=f"naive accepts: {naive_accepts}; dl-RPQ accepts: {dl_accepts}",
    )


def e9_example21_symmetry() -> ExperimentResult:
    """E9 / Example 21: increasing dates on nodes and on edges, symmetrically."""
    node_query = "(a^z)(x := date) ( [_](a^z)(date > x)(x := date) )*"
    edge_query = "[a^z][x := date] ( (_)[a^z][date > x][x := date] )*"
    rows = []
    for dates, expected in [((1, 2, 3), True), ((3, 4, 1, 2), False)]:
        node_graph = dated_path(dates, on="nodes")
        edge_graph = dated_path(dates, on="edges")
        node_last = f"v{len(dates) - 1}"
        node_hit = bool(
            list(
                evaluate_dlrpq(node_query, node_graph, "v0", node_last, mode="all")
            )
        )
        edge_hit = bool(
            list(
                evaluate_dlrpq(
                    edge_query, edge_graph, "v0", f"v{len(dates)}", mode="all"
                )
            )
        )
        rows.append(
            {
                "dates": str(dates),
                "expected_increasing": expected,
                "node_version": node_hit,
                "edge_version": edge_hit,
                "agree": node_hit == edge_hit == expected,
            }
        )
    return ExperimentResult(
        experiment_id="E9",
        title="Example 21 — node/edge symmetry of dl-RPQs",
        claim="the edge version is the node version with () and [] swapped, "
        "and both implement 'increasing dates' correctly",
        rows=rows,
        finding="node and edge versions agree on all date sequences: "
        + str(all(row["agree"] for row in rows)),
    )
