"""Experiments E25–E26: CoreGQL's semantics and expressive-power frontier."""

from __future__ import annotations

from repro.coregql.language import section_413_example_query
from repro.coregql.parser import parse_coregql_pattern
from repro.coregql.semantics import pattern_triples
from repro.crpq.ast import CRPQ, RPQAtom, Var, parse_crpq
from repro.crpq.nested import VirtualLabel, evaluate_nested_crpq
from repro.experiments.runner import ExperimentResult
from repro.graph.datasets import figure3_graph
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import Symbol, star


def e26_coregql_worked_example() -> ExperimentResult:
    """E26 / Section 4.1.3: the sigma/pi/join query over R^pi_Omega."""
    graph = figure3_graph()
    query = section_413_example_query(shared_prop="isBlocked", output_prop="owner")
    result = query.evaluate(graph)
    reach = pattern_triples(
        parse_coregql_pattern("(x) ->{1,} (y)"), graph
    )
    rows = [
        {
            "component": "pattern relation join + sigma + pi",
            "result_rows": len(result),
            "contains_mike": ("a3", "Mike") in result,
        },
        {
            "component": "pattern reachability ->{1,} (NLOGSPACE-ish core)",
            "result_rows": len({(s, t) for s, t, _m in reach}),
            "contains_mike": ("a3", "a5") in {(s, t) for s, t, _m in reach},
        },
    ]
    return ExperimentResult(
        experiment_id="E26",
        title="Section 4.1.3 — CoreGQL: algebra over pattern relations",
        claim="pi_{x,x.s}(sigma_{x1!=x2 and x1.p=x2.p}(R1 join R2)) composes "
        "pattern matching with relational algebra; patterns express "
        "reachability",
        rows=rows,
        finding="the worked query runs end-to-end over Figure 3",
    )


def _mutual_chain_graph() -> EdgeLabeledGraph:
    graph = EdgeLabeledGraph()
    graph.add_edge("t1", "v0", "v1", "Transfer")
    graph.add_edge("t2", "v1", "v0", "Transfer")
    graph.add_edge("t3", "v1", "v2", "Transfer")
    graph.add_edge("t4", "v2", "v1", "Transfer")
    graph.add_edge("t5", "v2", "v3", "Transfer")
    return graph


def e25_information_flow() -> ExperimentResult:
    """E25 / Proposition 24 (demonstration, not proof).

    CoreGQL pipelines information one way: patterns first, relational
    algebra after.  Reachability over a *derived* edge relation (the
    mutual-transfer pairs of Example 14) therefore needs nesting — CoreGQL's
    pattern layer cannot consume the algebra's output.  We demonstrate the
    gap: the nested-CRPQ answer differs from both one-shot pattern
    reachability and the one-hop derived relation, the two things the
    CoreGQL pipeline can produce directly.
    """
    graph = _mutual_chain_graph()
    q1 = parse_crpq("q1(x, y) :- Transfer(x, y), Transfer(y, x)")
    virtual = VirtualLabel("mutual", q1)
    nested = CRPQ(
        head=(Var("u"), Var("v")),
        atoms=(RPQAtom(star(Symbol(virtual)), Var("u"), Var("v")),),
    )
    derived_closure = evaluate_nested_crpq(nested, graph)

    plain_reach = {
        (s, t)
        for s, t, _m in pattern_triples(
            parse_coregql_pattern("(x) ->* (y)"), graph
        )
    }
    from repro.crpq.evaluation import evaluate_crpq

    one_hop = evaluate_crpq(q1, graph)

    rows = [
        {
            "query": "nested CRPQ (q1[x,y])*",
            "pairs": len(derived_closure),
            "v0_to_v2": ("v0", "v2") in derived_closure,
            "v0_to_v3": ("v0", "v3") in derived_closure,
        },
        {
            "query": "CoreGQL pattern reachability ->*",
            "pairs": len(plain_reach),
            "v0_to_v2": ("v0", "v2") in plain_reach,
            "v0_to_v3": ("v0", "v3") in plain_reach,
        },
        {
            "query": "CoreGQL algebra over q1 (one hop)",
            "pairs": len(one_hop),
            "v0_to_v2": ("v0", "v2") in one_hop,
            "v0_to_v3": ("v0", "v3") in one_hop,
        },
    ]
    return ExperimentResult(
        experiment_id="E25",
        title="Proposition 24 — one-way information flow (demonstration)",
        claim="CoreGQL evaluates patterns first and algebra after, so "
        "reachability over FO-derived edges is out of reach; nesting "
        "(Section 3.1.3) is what restores NLOGSPACE",
        rows=rows,
        finding="the derived-closure answer (v0~v2 but not v0~v3) matches "
        "neither CoreGQL-expressible relation — the gap Prop. 24 formalizes",
    )
