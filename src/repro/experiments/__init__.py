"""The experiment registry: every figure/example/claim the paper offers.

Each entry is a zero-argument callable returning an
:class:`~repro.experiments.runner.ExperimentResult`; ``run_experiment``
executes one by id, ``run_all`` the full battery.  The mapping from ids to
paper artifacts is DESIGN.md's per-experiment index; EXPERIMENTS.md records
the paper-vs-measured outcomes.

Command line::

    python -m repro.experiments E14      # one experiment
    python -m repro.experiments all      # everything (a few minutes)
    python -m repro.experiments --list   # what exists
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.runner import ExperimentResult, render_table
from repro.experiments.examples_section3 import (
    e1_transfer_star,
    e2_crpqs,
    e3_nested_crpqs,
    e4_lrpq_bindings,
    e5_shortest_grouping,
)
from repro.experiments.gql_quirks import (
    e6_example1_inequivalence,
    e7_example2_group_roles,
    e8_example3_naive_where,
    e9_example21_symmetry,
)
from repro.experiments.pitfalls import (
    e10_proposition22,
    e11_except_vs_dlrpq,
    e12_subset_sum,
    e13_diophantine,
)
from repro.experiments.evaluation_section6 import (
    e14_bag_semantics_boom,
    e15_rewrite_defuses,
    e16_e22_path_explosion_and_pmr,
    e17_exponential_lists,
    e18_product_construction,
    e19_query_log,
    e20_path_modes,
    e21_data_filters,
    e23_enumeration_delay,
    e24_spanners,
    e27_k_shortest,
)
from repro.experiments.coregql_experiments import (
    e25_information_flow,
    e26_coregql_worked_example,
)
from repro.experiments.extensions import (
    e28_naming_quirk,
    e29_containment_toolkit,
    e30_structure_analysis,
    e31_two_way_and_deltas,
    e32_forall_on_matched_paths,
)

REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "E1": e1_transfer_star,
    "E2": e2_crpqs,
    "E3": e3_nested_crpqs,
    "E4": e4_lrpq_bindings,
    "E5": e5_shortest_grouping,
    "E6": e6_example1_inequivalence,
    "E7": e7_example2_group_roles,
    "E8": e8_example3_naive_where,
    "E9": e9_example21_symmetry,
    "E10": e10_proposition22,
    "E11": e11_except_vs_dlrpq,
    "E12": e12_subset_sum,
    "E13": e13_diophantine,
    "E14": e14_bag_semantics_boom,
    "E15": e15_rewrite_defuses,
    "E16": e16_e22_path_explosion_and_pmr,
    "E17": e17_exponential_lists,
    "E18": e18_product_construction,
    "E19": e19_query_log,
    "E20": e20_path_modes,
    "E21": e21_data_filters,
    "E22": e16_e22_path_explosion_and_pmr,  # shared with E16 by design
    "E23": e23_enumeration_delay,
    "E24": e24_spanners,
    "E25": e25_information_flow,
    "E26": e26_coregql_worked_example,
    "E27": e27_k_shortest,
    "E28": e28_naming_quirk,
    "E29": e29_containment_toolkit,
    "E30": e30_structure_analysis,
    "E31": e31_two_way_and_deltas,
    "E32": e32_forall_on_matched_paths,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by its DESIGN.md id (e.g. ``"E14"``)."""
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[key]()


def run_all() -> list[ExperimentResult]:
    """Run the full battery (E22 is reported with E16, so it runs once)."""
    results = []
    seen_callables = set()
    for experiment_id in sorted(REGISTRY, key=lambda k: int(k[1:])):
        function = REGISTRY[experiment_id]
        if function in seen_callables:
            continue
        seen_callables.add(function)
        results.append(function())
    return results


__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "render_table",
    "run_experiment",
    "run_all",
]
