"""Experiments E1–E5: the worked examples of Sections 2–3 on Figures 2/3."""

from __future__ import annotations

from repro.crpq.ast import CRPQ, RPQAtom, Var, parse_crpq
from repro.crpq.evaluation import evaluate_crpq
from repro.crpq.nested import VirtualLabel, evaluate_nested_crpq
from repro.experiments.runner import ExperimentResult
from repro.graph.datasets import ACCOUNTS, figure2_graph
from repro.listvars.enumerate import evaluate_lrpq
from repro.listvars.lcrpq import parse_lcrpq, evaluate_lcrpq
from repro.regex.ast import Symbol, star
from repro.rpq.evaluation import evaluate_rpq


def e1_transfer_star() -> ExperimentResult:
    """E1 / Example 12: Transfer* relates all pairs of accounts."""
    graph = figure2_graph()
    result = evaluate_rpq("Transfer*", graph, sources=ACCOUNTS)
    account_pairs = {(u, v) for u in ACCOUNTS for v in ACCOUNTS}
    covered = account_pairs <= result
    return ExperimentResult(
        experiment_id="E1",
        title="Example 12 — Transfer* on Figure 2",
        claim="returns the complete set of pairs {a1..a6} x {a1..a6} (36 pairs)",
        rows=[
            {
                "query": "Transfer*",
                "account_pairs_expected": len(account_pairs),
                "account_pairs_found": len(result & account_pairs),
                "all_pairs_covered": covered,
            }
        ],
        finding=f"all 36 account pairs answered: {covered}",
    )


def e2_crpqs() -> ExperimentResult:
    """E2 / Example 13: the two CRPQs q1 and q2."""
    graph = figure2_graph()
    q1 = parse_crpq(
        "q1(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)"
    )
    q1_result = evaluate_crpq(q1, graph)
    q2 = parse_crpq(
        "q2(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), "
        "(Transfer.Transfer?)(x, y)"
    )
    q2_result = evaluate_crpq(q2, graph)
    expected_q1 = {("a3", "a2", "a4"), ("a6", "a3", "a5")}
    return ExperimentResult(
        experiment_id="E2",
        title="Example 13 — CRPQs q1 and q2 on Figure 2",
        claim="q1 returns {(a3,a2,a4),(a6,a3,a5)}; q2 contains (a4,Rebecca,no)",
        rows=[
            {
                "query": "q1",
                "result_size": len(q1_result),
                "matches_paper": q1_result == expected_q1,
            },
            {
                "query": "q2",
                "result_size": len(q2_result),
                "matches_paper": ("a4", "Rebecca", "no") in q2_result,
            },
        ],
        finding=(
            f"q1 == paper set: {q1_result == expected_q1}; "
            f"(a4, Rebecca, no) in q2: {('a4', 'Rebecca', 'no') in q2_result}"
        ),
    )


def e3_nested_crpqs() -> ExperimentResult:
    """E3 / Examples 14–15: closing virtual mutual-transfer edges.

    Figure 2 happens to contain no mutual transfers, so the closure would
    be trivial there; we add a back-transfer chain (the Example 15 shape)
    to the bank graph to make the virtual edges non-empty.
    """
    graph = figure2_graph()
    # back-edges making a1 <-> a3 <-> a2 mutual-transfer pairs
    graph.add_edge("back1", "a3", "a1", "Transfer")
    graph.add_edge("back2", "a2", "a3", "Transfer")
    q1 = parse_crpq("q1(x, y) :- Transfer(x, y), Transfer(y, x)")
    direct = evaluate_crpq(q1, graph)
    virtual = VirtualLabel("mutual", q1)
    q2 = CRPQ(
        head=(Var("u"), Var("v")),
        atoms=(RPQAtom(star(Symbol(virtual)), Var("u"), Var("v")),),
    )
    closure = evaluate_nested_crpq(q2, graph)
    non_reflexive = {(u, v) for u, v in closure if u != v}
    return ExperimentResult(
        experiment_id="E3",
        title="Examples 14-15 — nested CRPQs close virtual edges",
        claim="CRPQs cannot take Kleene closure of q1's virtual edges; "
        "nested CRPQs (regular queries) can",
        rows=[
            {"relation": "q1 (one virtual hop)", "pairs": len(direct)},
            {"relation": "q2 = (q1[x,y])*", "pairs": len(closure)},
            {"relation": "q2 minus reflexive", "pairs": len(non_reflexive)},
        ],
        finding=(
            f"closure adds {len(closure) - len(direct)} pairs beyond the "
            "single-hop relation (including all reflexive pairs)"
        ),
    )


def e4_lrpq_bindings() -> ExperimentResult:
    """E4 / Example 16: (Transfer^z)* . isBlocked path bindings."""
    graph = figure2_graph()
    to_yes = list(
        evaluate_lrpq(
            "(Transfer^z)* . isBlocked", graph, "a3", "yes", mode="all", limit=40
        )
    )
    lists = {binding.mu["z"] for binding in to_yes}
    to_no = list(
        evaluate_lrpq(
            "(Transfer^z)* . isBlocked", graph, "a3", "no", mode="all", limit=40
        )
    )
    has_mu5 = any(binding.mu["z"] == () for binding in to_no)
    return ExperimentResult(
        experiment_id="E4",
        title="Example 16 — l-RPQ list bindings, parallel edges distinguished",
        claim="bindings include list(t2,t3) and list(t5,t3) separately "
        "(edge identity), plus list() for path(a3,r9,no)",
        rows=[
            {"binding": "list(t2, t3)", "found": ("t2", "t3") in lists},
            {"binding": "list(t5, t3)", "found": ("t5", "t3") in lists},
            {"binding": "list(t6)", "found": ("t6",) in lists},
            {"binding": "list() via r9", "found": has_mu5},
        ],
        finding=f"{len(lists)} distinct lists to 'yes' within the first 40 results",
    )


def e5_shortest_grouping() -> ExperimentResult:
    """E5 / Example 17: shortest grouped by endpoint pairs."""
    graph = figure2_graph()
    q = parse_lcrpq(
        "q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), "
        "shortest (Transfer^z)+(y1, y2)"
    )
    result = evaluate_lcrpq(q, graph)
    rows = [
        {
            "owners": "Jay -> Rebecca",
            "expected_list": "(t10,)",
            "found": ("Jay", "Rebecca", ("t10",)) in result,
        },
        {
            "owners": "Mike -> Megan",
            "expected_list": "(t7, t4)",
            "found": ("Mike", "Megan", ("t7", "t4")) in result,
        },
    ]
    per_pair_lengths: dict = {}
    for x1, x2, z in result:
        per_pair_lengths.setdefault((x1, x2), set()).add(len(z))
    grouped = all(len(lengths) == 1 for lengths in per_pair_lengths.values())
    return ExperimentResult(
        experiment_id="E5",
        title="Example 17 — shortest applies per endpoint pair",
        claim="end-node selection happens before shortest: Jay->Rebecca gets "
        "list(t10), Mike->Megan gets list(t7,t4)",
        rows=rows,
        finding=f"each endpoint pair sees exactly one path length: {grouped}",
    )
