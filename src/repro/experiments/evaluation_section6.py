"""Experiments E14–E24 and E27: Section 6's evaluation phenomena."""

from __future__ import annotations

import time

from repro.datatests.dlrpq import evaluate_dlrpq
from repro.experiments.runner import ExperimentResult
from repro.graph.datasets import figure3_graph
from repro.graph.generators import (
    clique,
    diamond_chain,
    label_path,
    random_graph,
)
from repro.listvars.enumerate import evaluate_lrpq
from repro.pmr.build import pmr_for_rpq, pmr_for_unblocked_cycles
from repro.pmr.enumerate import enumerate_spaths
from repro.pmr.ops import count_paths_of_length, is_finite, pmr_size
from repro.regex.ast import regex_size, to_string
from repro.regex.parser import parse_regex
from repro.regex.rewrite import simplify
from repro.rpq.bag_semantics import total_bag_answers
from repro.rpq.counting import count_matching_paths
from repro.rpq.evaluation import evaluate_rpq
from repro.rpq.kshortest import k_shortest_matching_paths
from repro.rpq.path_modes import matching_paths
from repro.spanners.evaluate import count_mappings
from repro.workloads.querylog import analyze_query_log, generate_query_log


def e14_bag_semantics_boom(max_clique: int = 6, star_depth: int = 4) -> ExperimentResult:
    """E14 / Section 6.1: counting beyond a yottabyte."""
    rows = []
    for size in range(3, max_clique + 1):
        graph = clique(size, loops=False)
        for depth in range(1, star_depth + 1):
            text = "a*"
            for _ in range(depth - 1):
                text = f"({text})*"
            total = total_bag_answers(text, graph)
            rows.append(
                {
                    "clique": size,
                    "expression": text,
                    "total_answers_digits": len(str(total)),
                    "exceeds_protons_1e80": total > 10**80,
                }
            )
    return ExperimentResult(
        experiment_id="E14",
        title="Section 6.1 — bag semantics + recursion: Boom!",
        claim="evaluating (((a*)*)*)* on a 6-clique gives more answers than "
        "protons in the observable universe (~1e80)",
        rows=rows,
        finding="counts explode doubly exponentially in the star depth",
    )


def e15_rewrite_defuses() -> ExperimentResult:
    """E15 / Sections 6.1-6.2: automata-compatible rewriting."""
    graph = clique(6, loops=False)
    nested = parse_regex("(((a*)*)*)*", normalize=False)
    rewritten = simplify(nested)
    rows = [
        {
            "expression": to_string(nested),
            "size": regex_size(nested),
            "set_semantics_answers": len(evaluate_rpq(nested, graph)),
        },
        {
            "expression": to_string(rewritten),
            "size": regex_size(rewritten),
            "set_semantics_answers": len(evaluate_rpq(rewritten, graph)),
        },
    ]
    return ExperimentResult(
        experiment_id="E15",
        title="Section 6.1 — (((a*)*)*)* rewrites to a*",
        claim="automata-compatible design allows rewriting the bomb away; "
        "set semantics returns 36 pairs either way",
        rows=rows,
        finding=f"rewritten expression: {to_string(rewritten)}; both return "
        "the same 36-pair relation",
    )


def e16_e22_path_explosion_and_pmr(max_n: int = 12) -> ExperimentResult:
    """E16+E22 / Figure 5 and Section 6.4: 2^n paths, O(n) PMR."""
    rows = []
    for n in range(2, max_n + 1, 2):
        graph = diamond_chain(n)
        pmr = pmr_for_rpq("a*", graph, "j0", f"j{n}")
        rows.append(
            {
                "diamonds": n,
                "paths": count_paths_of_length(pmr, 2 * n),
                "pmr_size": pmr_size(pmr),
                "graph_size": graph.num_nodes + graph.num_edges,
            }
        )
    fig3 = figure3_graph()
    cycles_pmr = pmr_for_unblocked_cycles(fig3, "a3")
    return ExperimentResult(
        experiment_id="E16+E22",
        title="Figure 5 / Section 6.4 — exponential paths, linear PMRs",
        claim="graphs of size n with 2^Theta(n) matching paths; a PMR "
        "represents them in O(n) space, and even infinite path sets "
        "(the unblocked Mike cycles) finitely",
        rows=rows,
        finding=(
            f"unblocked a3->a3 cycles: infinite={not is_finite(cycles_pmr)}, "
            f"PMR size={pmr_size(cycles_pmr)}"
        ),
    )


def e17_exponential_lists(max_n: int = 7) -> ExperimentResult:
    """E17 / Section 6.3: 2^n lists on one matched path."""
    rows = []
    for n in range(2, max_n + 1):
        graph = label_path(2 * n)
        bindings = list(
            evaluate_lrpq("(a.a^z + a^z.a)*", graph, "v0", f"v{2 * n}", mode="all")
        )
        rows.append(
            {
                "path_edges": 2 * n,
                "distinct_paths": len({binding.path for binding in bindings}),
                "distinct_lists": len({binding.mu for binding in bindings}),
                "expected_lists": 2**n,
            }
        )
    return ExperimentResult(
        experiment_id="E17",
        title="Section 6.3 — (a.a^z + a^z.a)* binds 2^n lists on one path",
        claim="a list variable can generate exponentially large output on "
        "every matched path",
        rows=rows,
        finding="one path, exponentially many mu — intermediate results "
        "cannot be materialized naively",
    )


def e18_product_construction(sizes=(10, 20, 40)) -> ExperimentResult:
    """E18 / Section 6.2: evaluation via the product, counting via
    unambiguous automata."""
    rows = []
    for n in sizes:
        graph = random_graph(n, 3 * n, labels=("a", "b"), seed=n)
        start = time.perf_counter()
        answers = evaluate_rpq("a.b*.a", graph)
        seconds = time.perf_counter() - start
        rows.append(
            {
                "nodes": n,
                "edges": 3 * n,
                "answers": len(answers),
                "seconds": seconds,
            }
        )
    # counting cross-check on the diamond family
    graph = diamond_chain(6)
    count = count_matching_paths("a*", graph, "j0", "j6", length=12)
    enumerated = len(list(matching_paths("a*", graph, "j0", "j6", mode="all")))
    return ExperimentResult(
        experiment_id="E18",
        title="Section 6.2 — RPQ evaluation and counting on the product graph",
        claim="answering is reachability in G x A (polynomial); with an "
        "unambiguous automaton, counting runs is counting paths",
        rows=rows,
        finding=(
            f"diamond(6): counted {count} paths of length 12, enumeration "
            f"found {enumerated} — equal: {count == enumerated}"
        ),
    )


def e19_query_log(count: int = 2000) -> ExperimentResult:
    """E19 / Section 6.2: the [62]-style ambiguity study (synthetic)."""
    labels = ("p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7")
    log = generate_query_log(count, labels=labels, seed=62)
    report = analyze_query_log(log, labels)
    rows = [
        {
            "shape": shape,
            "total": bucket["total"],
            "ambiguous": bucket["ambiguous"],
        }
        for shape, bucket in sorted(report["by_shape"].items())
    ]
    return ExperimentResult(
        experiment_id="E19",
        title="Section 6.2 — query-log ambiguity study (synthetic stand-in)",
        claim="ambiguous RPQs occur, but none require an unambiguous "
        "automaton larger than the expression",
        rows=rows,
        finding=(
            f"{report['ambiguous']}/{report['total']} ambiguous, "
            f"{report['determinized']} determinized, "
            f"{len(report['blowups'])} size blow-ups (paper found none)"
        ),
    )


def e20_path_modes(sizes=(4, 6, 8)) -> ExperimentResult:
    """E20 / Section 6.3: simple/trail are NP-hard yet feasible in practice."""
    rows = []
    for n in sizes:
        well_behaved = random_graph(10 * n, 15 * n, labels=("a",), seed=n)
        adversarial = clique(n, loops=False)
        for name, graph, source, target in (
            ("sparse-random", well_behaved, "v0", "v1"),
            ("clique", adversarial, "v0", "v1"),
        ):
            start = time.perf_counter()
            simple_paths = sum(
                1
                for _ in matching_paths(
                    "a+", graph, source, target, mode="simple"
                )
            )
            seconds = time.perf_counter() - start
            rows.append(
                {
                    "graph": f"{name}(n={n})",
                    "simple_paths": simple_paths,
                    "seconds": seconds,
                }
            )
    return ExperimentResult(
        experiment_id="E20",
        title="Section 6.3 — path modes: NP-complete but often well-behaved",
        claim="simple/trail existence is NP-complete, yet practical on "
        "well-behaved graphs; dense graphs blow up",
        rows=rows,
        finding="sparse graphs stay cheap while cliques grow factorially",
    )


def e21_data_filters() -> ExperimentResult:
    """E21 / Section 6.3: data filters force looking beyond shortest paths."""
    graph = figure3_graph()
    one_cheap = (
        "(_) ([Transfer](_))* [Transfer][amount < 4500000](_) ([Transfer](_))*"
    )
    two_cheap = (
        "(_) ([Transfer](_))* [Transfer][amount < 4500000](_) ([Transfer](_))* "
        "[Transfer][amount < 4500000](_) ([Transfer](_))*"
    )
    unfiltered = next(
        iter(matching_paths("Transfer+", graph, "a3", "a5", mode="shortest"))
    )
    one = list(evaluate_dlrpq(one_cheap, graph, "a3", "a5", mode="shortest"))
    two = list(evaluate_dlrpq(two_cheap, graph, "a3", "a5", mode="shortest"))
    rows = [
        {
            "query": "no filter",
            "shortest_length": len(unfiltered),
            "simple": unfiltered.is_simple(),
        },
        {
            "query": ">=1 transfer < 4.5M",
            "shortest_length": len(one[0].path),
            "simple": one[0].path.is_simple(),
        },
        {
            "query": ">=2 transfers < 4.5M",
            "shortest_length": len(two[0].path),
            "simple": two[0].path.is_simple(),
        },
    ]
    return ExperimentResult(
        experiment_id="E21",
        title="Section 6.3 — data filters vs shortest (Mike to Rebecca)",
        claim="the direct path is invalid; one cheap transfer forces "
        "path(a3,t6,a4,t9,a6,t10,a5); two cheap transfers force a cycle",
        rows=rows,
        finding=(
            f"shortest with two cheap transfers revisits a node "
            f"(simple={two[0].path.is_simple()})"
        ),
    )


def e23_enumeration_delay(n: int = 10) -> ExperimentResult:
    """E23 / Section 6.4: output-linear delay enumeration from a PMR."""
    graph = diamond_chain(n)
    pmr = pmr_for_rpq("a*", graph, "j0", f"j{n}")
    delays = []
    last = time.perf_counter()
    lengths = []
    for path in enumerate_spaths(pmr, order="dfs"):
        now = time.perf_counter()
        delays.append(now - last)
        lengths.append(len(path))
        last = now
    rows = [
        {
            "outputs": len(delays),
            "output_length": lengths[0],
            "max_delay_seconds": max(delays),
            "mean_delay_seconds": sum(delays) / len(delays),
        }
    ]
    return ExperimentResult(
        experiment_id="E23",
        title="Section 6.4 — output-linear-delay enumeration from PMRs",
        claim="constant delay is impossible (paths grow); delays linear in "
        "the output are achievable after PMR preprocessing",
        rows=rows,
        finding=(
            f"enumerated {len(delays)} paths of length {lengths[0]}; max "
            f"delay {max(delays):.2e}s stays proportional to path length"
        ),
    )


def e24_spanners(max_n: int = 7) -> ExperimentResult:
    """E24 / Section 6.4: spanner mappings explode like list bindings."""
    rows = []
    for n in range(2, max_n + 1):
        document = "a" * (2 * n)
        count = count_mappings("(x{a}a + ax{a})*", document)
        rows.append(
            {"document": f"a^{2 * n}", "mappings": count, "expected": 2**n}
        )
    return ExperimentResult(
        experiment_id="E24",
        title="Section 6.4 — document spanners mirror l-RPQs on paths",
        claim="exponentially many mappings over a single document motivate "
        "enumeration-based evaluation [2]",
        rows=rows,
        finding="mapping counts equal the l-RPQ list counts of E17",
    )


def e27_k_shortest(k: int = 8) -> ExperimentResult:
    """E27 / Section 7.1: k shortest matching paths via deviations."""
    graph = figure3_graph()
    paths = list(
        k_shortest_matching_paths("Transfer+", graph, "a3", "a5", k=k)
    )
    rows = [
        {"rank": index + 1, "length": len(path), "edges": str(path.edges())}
        for index, path in enumerate(paths)
    ]
    non_decreasing = all(
        len(paths[i]) <= len(paths[i + 1]) for i in range(len(paths) - 1)
    )
    return ExperimentResult(
        experiment_id="E27",
        title="Section 7.1 — k shortest matching paths (Eppstein direction)",
        claim="k-shortest-path enumeration is a natural next step for "
        "returning RPQ paths",
        rows=rows,
        finding=f"{len(paths)} distinct paths, lengths non-decreasing: "
        f"{non_decreasing}",
    )
