"""Experiments E10–E13: Section 5's inexpressibility results and ad-hoc
solution pitfalls."""

from __future__ import annotations

import time

from repro.cypher.expressivity import search_for_even_length_pattern
from repro.datatests.dlrpq import evaluate_dlrpq
from repro.experiments.runner import ExperimentResult
from repro.gql.listfuncs import diophantine_two_semantics, subset_sum_paths
from repro.gql.pathsets import increasing_edges_via_except
from repro.graph.generators import dated_path, self_loop_graph, subset_sum_graph


def e10_proposition22() -> ExperimentResult:
    """E10 / Proposition 22: no Cypher-fragment pattern expresses (ll)*."""
    report = search_for_even_length_pattern(max_offset=6, max_atoms=4)
    witness_histogram: dict = {}
    for witness in report["witnesses"].values():
        witness_histogram[witness] = witness_histogram.get(witness, 0) + 1
    rows = [
        {"disagrees_at_distance": distance, "shapes": count}
        for distance, count in sorted(witness_histogram.items())
    ]
    return ExperimentResult(
        experiment_id="E10",
        title="Proposition 22 — (ll)* is not expressible in the Cypher fragment",
        claim="Cypher's repetition applies only to label disjunctions, so "
        "the even-length RPQ (ll)* escapes it",
        rows=rows,
        finding=(
            f"exhaustively checked {report['tried']} distance-set shapes up "
            f"to horizon {report['horizon']}; expressible: "
            f"{report['expressible']}"
        ),
    )


def e11_except_vs_dlrpq(sizes=(3, 4, 5, 6)) -> ExperimentResult:
    """E11 / Section 5.2: EXCEPT workaround vs direct dl-RPQ evaluation."""
    rows = []
    for n in sizes:
        graph = dated_path(list(range(1, n + 1)), on="edges", prop="k")
        target = f"v{n}"

        start = time.perf_counter()
        via_except = increasing_edges_via_except(graph, "v0", target, prop="k")
        except_seconds = time.perf_counter() - start

        start = time.perf_counter()
        via_dlrpq = {
            binding.path
            for binding in evaluate_dlrpq(
                "(_)[a][x := k] ( (_)[a][k > x][x := k] )* (_)",
                graph,
                "v0",
                target,
                mode="all",
            )
        }
        dlrpq_seconds = time.perf_counter() - start

        rows.append(
            {
                "path_length": n,
                "except_seconds": except_seconds,
                "dlrpq_seconds": dlrpq_seconds,
                "same_answer": via_except == via_dlrpq,
                "answers": len(via_dlrpq),
            }
        )
    return ExperimentResult(
        experiment_id="E11",
        title="Section 5.2 — increasing edges: EXCEPT vs dl-RPQ",
        claim="the complement workaround evaluates two full path sets and a "
        "difference; compositional evaluation performs poorly",
        rows=rows,
        finding="answers agree on every instance; EXCEPT pays for "
        "materializing both path sets",
    )


def e12_subset_sum(sizes=(4, 6, 8, 10)) -> ExperimentResult:
    """E12 / Section 5.2: the reduce-based subset-sum query blows up."""
    rows = []
    for n in sizes:
        numbers = [2**i for i in range(n)]
        graph = subset_sum_graph(numbers)
        unreachable_target = sum(numbers) + 1
        start = time.perf_counter()
        hits = subset_sum_paths(
            graph, "v0", f"v{n}", target_sum=unreachable_target
        )
        seconds = time.perf_counter() - start
        rows.append(
            {
                "numbers": n,
                "candidate_paths": 2**n,
                "hits": len(hits),
                "seconds": seconds,
            }
        )
    return ExperimentResult(
        experiment_id="E12",
        title="Section 5.2 — reduce makes subset sum 'deceptively easy to write'",
        claim="the reduce-equality query is NP-complete in data complexity "
        "(even restricted to shortest / simple / trail paths)",
        rows=rows,
        finding="running time doubles with every extra number: the 2^n "
        "candidate trails are all enumerated",
    )


def e13_diophantine() -> ExperimentResult:
    """E13 / Section 5.2: two semantics for shortest + Sigma_p condition."""
    rows = []
    for a, b, c, label in [
        (1, -5, 6, "x^2-5x+6 (roots 2, 3)"),
        (0, 1, -1, "x-1 (root 1)"),
        (1, 0, 1, "x^2+1 (no real root)"),
    ]:
        graph = self_loop_graph(a, b, c)
        report = diophantine_two_semantics(graph)
        rows.append(
            {
                "polynomial": label,
                "condition_after_shortest": sorted(
                    report["condition_after_shortest"]
                ),
                "shortest_satisfying": sorted(report["shortest_satisfying"]),
                "semantics_agree": report["condition_after_shortest"]
                == report["shortest_satisfying"],
            }
        )
    return ExperimentResult(
        experiment_id="E13",
        title="Section 5.2 — the Diophantine ambiguity of shortest+condition",
        claim="if shortest applies to satisfying paths, answering amounts to "
        "finding positive integer roots — 'uncomfortably close to solving "
        "Diophantine equations'",
        rows=rows,
        finding="the two candidate semantics disagree exactly when the "
        "polynomial has a positive root different from 1",
    )
