"""Drive a query log through the batch executor (or the seed path).

This is the glue between :mod:`repro.workloads.querylog` — the synthetic
stand-in for the paper's 150M-query SPARQL-log corpus — and the engine's
:class:`~repro.engine.batch.BatchExecutor`.  Two drivers share one report
shape so benchmarks and the CLI can compare them directly:

* :func:`run_query_log` — the batch path: deduplicate, pre-warm, share the
  index, fan out over a pool;
* :func:`run_query_log_sequential` — the seed path: one independent
  evaluation per query, re-parsing and re-compiling every time
  (``use_index=False``), exactly what the repo did before the engine
  existed.  This is the baseline the ``BENCH_workload.json`` speedup gate
  measures against, and the oracle the batch results are checked against.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.engine.batch import BatchExecutor
from repro.engine.stats import EngineStats
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import Regex
from repro.rpq.evaluation import evaluate_rpq

#: A workload is what :func:`~repro.workloads.querylog.generate_query_log`
#: produces: ``(shape, expression)`` pairs.  Bare expressions also work.
LogEntry = "tuple[str, Regex] | Regex | str"


@dataclass
class WorkloadReport:
    """One workload run: per-query answer sets plus aggregate accounting."""

    mode: str
    results: list
    wall_seconds: float
    num_queries: int
    num_unique: "int | None" = None
    jobs: "int | None" = None
    fork: bool = False
    stats: "EngineStats | None" = None
    phase_seconds: dict = field(default_factory=dict)
    #: the batch executor's merged per-query latency histogram
    latency_histogram: "object | None" = None
    #: per-unique-item ``{"query", "source", "seconds", "trace"}`` records
    timings: list = field(default_factory=list)
    #: the N worst items (slowest-first), traces attached when traced
    slow_queries: list = field(default_factory=list)
    #: True when the batch fan-out was cut short by a KeyboardInterrupt
    interrupted: bool = False
    #: aligned with ``results``: structured per-query error dicts from the
    #: batch executor (budget trips, injected faults); empty when clean
    errors: list = field(default_factory=list)

    @property
    def total_answers(self) -> int:
        return sum(len(result) for result in self.results if result is not None)

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.num_queries / self.wall_seconds

    def summary(self) -> dict:
        """A JSON-ready digest for benchmarks and the CLI."""
        digest = {
            "mode": self.mode,
            "num_queries": self.num_queries,
            "total_answers": self.total_answers,
            "wall_seconds": round(self.wall_seconds, 6),
            "queries_per_second": round(self.queries_per_second, 2),
        }
        if self.num_unique is not None:
            digest["num_unique"] = self.num_unique
        if self.jobs is not None:
            digest["jobs"] = self.jobs
            digest["fork"] = self.fork
        if self.phase_seconds:
            digest["phase_seconds"] = {
                name: round(value, 6) for name, value in self.phase_seconds.items()
            }
        if self.stats is not None:
            digest["engine_stats"] = self.stats.as_dict()
        if self.latency_histogram is not None and self.latency_histogram.count:
            digest["query_latency"] = self.latency_histogram.as_dict()
        if self.interrupted:
            digest["interrupted"] = True
            digest["num_completed"] = sum(
                1 for result in self.results if result is not None
            )
        failed = [error for error in self.errors if error is not None]
        if failed:
            digest["num_failed"] = len(failed)
            digest["errors"] = [
                dict(error, position=position)
                for position, error in enumerate(self.errors)
                if error is not None
            ]
        if self.slow_queries:
            digest["slow_queries"] = [
                {
                    "query": entry["query"],
                    "source": entry["source"],
                    "seconds": round(entry["seconds"], 6),
                }
                for entry in self.slow_queries
            ]
        return digest


def _expressions(log: Sequence[LogEntry]) -> list:
    """Strip query-log shape tags; accept bare expressions too."""
    expressions = []
    for entry in log:
        if isinstance(entry, tuple) and len(entry) == 2 and isinstance(entry[0], str):
            expressions.append(entry[1])
        else:
            expressions.append(entry)
    return expressions


def run_query_log(
    graph: EdgeLabeledGraph,
    log: Sequence[LogEntry],
    *,
    jobs: "int | None" = None,
    fork: bool = False,
    multi_source: bool = True,
    use_csr: bool = True,
    stats: "EngineStats | None" = None,
    slow_log: int = 0,
    budget=None,
) -> WorkloadReport:
    """Evaluate every log expression's full relation via the batch executor.

    A ``budget`` applies batch-wide: one shared deadline, per-item forked
    counters (see :meth:`BatchExecutor.run`).  ``use_csr=False`` drops the
    kernel to the dict data plane (the CSR benchmarks' baseline).
    """
    expressions = _expressions(log)
    executor = BatchExecutor(
        jobs=jobs, fork=fork, multi_source=multi_source, use_csr=use_csr,
        slow_log=slow_log,
    )
    stats = stats if stats is not None else EngineStats()
    batch = executor.run(graph, expressions, stats=stats, budget=budget)
    return WorkloadReport(
        mode="batch",
        results=batch.results,
        wall_seconds=batch.wall_seconds,
        num_queries=batch.num_queries,
        num_unique=batch.num_unique,
        jobs=batch.jobs,
        fork=batch.fork,
        stats=stats,
        phase_seconds=batch.phase_seconds,
        latency_histogram=batch.latency_histogram,
        timings=batch.timings,
        slow_queries=batch.slow_queries,
        interrupted=batch.interrupted,
        errors=batch.errors,
    )


def run_query_log_sequential(
    graph: EdgeLabeledGraph,
    log: Sequence[LogEntry],
    *,
    use_index: bool = False,
) -> WorkloadReport:
    """The per-query seed path: no sharing between queries whatsoever.

    With ``use_index=False`` (default) each query re-parses, re-runs
    Glushkov, and BFSes with linear edge scans — the exact pre-engine
    pipeline.  ``use_index=True`` gives the intermediate ablation: warm
    kernel, but still one per-source evaluation per query with no
    deduplication or fan-out.
    """
    expressions = _expressions(log)
    started = time.perf_counter()
    results = [
        evaluate_rpq(expression, graph, use_index=use_index, multi_source=False)
        for expression in expressions
    ]
    wall = time.perf_counter() - started
    return WorkloadReport(
        mode="sequential-indexed" if use_index else "sequential-seed",
        results=results,
        wall_seconds=wall,
        num_queries=len(expressions),
    )
