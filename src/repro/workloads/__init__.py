"""Workload generators for benchmarks and experiments.

Graph families live in :mod:`repro.graph.generators` (re-exported here for
convenience); :mod:`~repro.workloads.querylog` synthesizes RPQ workloads
whose *shape distribution* follows the published analyses of real SPARQL
query logs — the stand-in for the 150M-query corpus of [62] that the paper
cites in Section 6.2 (see DESIGN.md, "Substitutions").
"""

from repro.graph.generators import (
    clique,
    dated_path,
    diamond_chain,
    label_cycle,
    label_path,
    parallel_chain,
    random_graph,
    random_transfer_network,
    self_loop_graph,
    subset_sum_graph,
)
from repro.workloads.querylog import (
    SHAPE_DISTRIBUTION,
    analyze_query_log,
    generate_query_log,
)
from repro.workloads.runner import (
    WorkloadReport,
    run_query_log,
    run_query_log_sequential,
)

__all__ = [
    "WorkloadReport",
    "run_query_log",
    "run_query_log_sequential",
    "label_path",
    "label_cycle",
    "clique",
    "diamond_chain",
    "parallel_chain",
    "dated_path",
    "subset_sum_graph",
    "self_loop_graph",
    "random_graph",
    "random_transfer_network",
    "generate_query_log",
    "analyze_query_log",
    "SHAPE_DISTRIBUTION",
]
