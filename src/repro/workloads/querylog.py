"""A synthetic RPQ query log in the style of the SPARQL-log studies.

The paper cites a study of 150M+ RPQs from SPARQL logs [62] with the
finding that "while ambiguous RPQs did occur, none of them required an
unambiguous (or even deterministic) automaton that is larger than the
regular expression".  The corpus is not public, so this module generates a
query population following the *shape taxonomy* such studies report:
overwhelmingly single labels and short chains, some disjunctions and
starred labels, rare nested/complex expressions.  Frequencies below are the
tunable stand-in distribution (see DESIGN.md, "Substitutions").

:func:`analyze_query_log` then reproduces the study's measurement: for each
expression, is the Glushkov automaton ambiguous, which construction does
:func:`~repro.automata.ambiguity.unambiguous_nfa` need, and how does the
unambiguous automaton's size compare to the expression's.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.automata.ambiguity import is_ambiguous, unambiguous_nfa
from repro.automata.glushkov import glushkov
from repro.regex.ast import (
    Regex,
    Symbol,
    concat,
    optional,
    plus,
    regex_size,
    star,
    union,
)

#: shape name -> relative frequency (renormalized at generation time).
SHAPE_DISTRIBUTION: dict[str, float] = {
    "single_label": 0.55,
    "chain": 0.18,
    "star_of_label": 0.09,
    "plus_of_label": 0.05,
    "disjunction": 0.06,
    "star_of_disjunction": 0.03,
    "optional_chain": 0.02,
    "chain_with_star_tail": 0.015,
    "nested": 0.005,
}


def _zipf_label(rng: random.Random, labels: Sequence[str]) -> Symbol:
    """Labels follow a Zipf-like popularity curve, as in real logs."""
    weights = [1.0 / (rank + 1) for rank in range(len(labels))]
    return Symbol(rng.choices(labels, weights=weights, k=1)[0])


def _make_shape(shape: str, rng: random.Random, labels: Sequence[str]) -> Regex:
    if shape == "single_label":
        return _zipf_label(rng, labels)
    if shape == "chain":
        length = rng.randint(2, 4)
        return concat(*(_zipf_label(rng, labels) for _ in range(length)))
    if shape == "star_of_label":
        return star(_zipf_label(rng, labels))
    if shape == "plus_of_label":
        return plus(_zipf_label(rng, labels))
    if shape == "disjunction":
        width = rng.randint(2, 3)
        return union(*(_zipf_label(rng, labels) for _ in range(width)))
    if shape == "star_of_disjunction":
        width = rng.randint(2, 3)
        return star(union(*(_zipf_label(rng, labels) for _ in range(width))))
    if shape == "optional_chain":
        return concat(
            _zipf_label(rng, labels), optional(_zipf_label(rng, labels))
        )
    if shape == "chain_with_star_tail":
        return concat(
            _zipf_label(rng, labels), star(_zipf_label(rng, labels))
        )
    if shape == "nested":
        # the rare complex shapes, including ambiguity-prone ones
        inner = union(
            _zipf_label(rng, labels),
            concat(_zipf_label(rng, labels), star(_zipf_label(rng, labels))),
        )
        return star(inner)
    raise ValueError(f"unknown shape {shape!r}")


def generate_query_log(
    count: int,
    labels: Sequence[str] = ("p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"),
    seed: int = 0,
    distribution: "dict[str, float] | None" = None,
) -> list[tuple[str, Regex]]:
    """Generate ``count`` (shape, expression) pairs, deterministically."""
    rng = random.Random(seed)
    dist = distribution if distribution is not None else SHAPE_DISTRIBUTION
    shapes = list(dist)
    weights = [dist[shape] for shape in shapes]
    log = []
    for _ in range(count):
        shape = rng.choices(shapes, weights=weights, k=1)[0]
        log.append((shape, _make_shape(shape, rng, labels)))
    return log


def analyze_query_log(
    log: list[tuple[str, Regex]], alphabet: Sequence[str]
) -> dict:
    """Reproduce the [62]-style measurement over a generated log.

    Returns aggregate statistics:

    * ``total``, ``ambiguous`` — how many Glushkov automata are ambiguous;
    * ``determinized`` — how many needed determinization to become
      unambiguous;
    * ``blowups`` — expressions whose unambiguous automaton is larger than
      the expression, i.e. has more states than the Glushkov budget of
      ``size(expression) + 1`` (the study found none);
    * ``by_shape`` — ambiguity counts per shape.
    """
    sigma = frozenset(alphabet)
    total = 0
    ambiguous = 0
    determinized = 0
    blowups: list[tuple[Regex, int, int]] = []
    by_shape: dict[str, dict[str, int]] = {}
    for shape, regex in log:
        total += 1
        bucket = by_shape.setdefault(shape, {"total": 0, "ambiguous": 0})
        bucket["total"] += 1
        position_nfa = glushkov(regex, sigma).trim()
        if is_ambiguous(position_nfa):
            ambiguous += 1
            bucket["ambiguous"] += 1
        nfa, how = unambiguous_nfa(regex, sigma)
        if how == "determinized":
            determinized += 1
        expression_budget = regex_size(regex) + 1
        if nfa.num_states > expression_budget:
            blowups.append((regex, nfa.num_states, expression_budget))
    return {
        "total": total,
        "ambiguous": ambiguous,
        "determinized": determinized,
        "blowups": blowups,
        "by_shape": by_shape,
    }
