"""CoreGQL patterns (Section 4.1.1).

The grammar::

    pi := (x) | -x-> | pi1 pi2 | pi1 + pi2 | pi^{n..m} | pi<theta>

with optional variables.  Free variables implement the paper's rules
exactly — in particular ``FV(pi^{n..m}) = {}`` (repetition erases bindings,
keeping relations atomic-valued) and both branches of a union must agree on
free variables (keeping relations null-free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


class Pattern:
    """Base class for CoreGQL pattern nodes."""

    __slots__ = ()

    def concat(self, other: "Pattern") -> "Pattern":
        return PatternConcat((self, other))

    def union(self, other: "Pattern") -> "Pattern":
        return PatternUnion(self, other)

    def repeat(self, low: int, high: "int | None") -> "Pattern":
        return PatternRepeat(self, low, high)

    def star(self) -> "Pattern":
        return PatternRepeat(self, 0, None)

    def where(self, condition) -> "Pattern":
        return PatternCondition(self, condition)


@dataclass(frozen=True)
class NodePattern(Pattern):
    """``(x)`` — matches any node; ``var=None`` is the anonymous ``()``."""

    var: object = None


@dataclass(frozen=True)
class EdgePattern(Pattern):
    """``-x->`` — matches any edge; the produced path is node-to-node
    (``path(n1, e, n2)``), per Figure 4."""

    var: object = None


@dataclass(frozen=True)
class PatternConcat(Pattern):
    parts: tuple

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise QueryError("concatenation needs at least two parts")


@dataclass(frozen=True)
class PatternUnion(Pattern):
    """``pi1 + pi2`` — CoreGQL requires FV(pi1) = FV(pi2) (no nulls)."""

    left: Pattern
    right: Pattern

    def __post_init__(self) -> None:
        if free_variables(self.left) != free_variables(self.right):
            raise QueryError(
                "union branches must have identical free variables "
                f"({sorted(map(str, free_variables(self.left)))} vs "
                f"{sorted(map(str, free_variables(self.right)))}); "
                "real GQL allows this and pays with nulls (Section 4.2)"
            )


@dataclass(frozen=True)
class PatternRepeat(Pattern):
    """``pi^{n..m}``; ``high=None`` encodes m = infinity (``pi*``)."""

    inner: Pattern
    low: int
    high: "int | None"

    def __post_init__(self) -> None:
        if self.low < 0 or (self.high is not None and self.high < self.low):
            raise QueryError(f"invalid repetition bounds {self.low}..{self.high}")


@dataclass(frozen=True)
class PatternCondition(Pattern):
    """``pi<theta>`` — keep matches whose binding satisfies the condition."""

    inner: Pattern
    condition: object


def free_variables(pattern: Pattern) -> frozenset:
    """``FV(pi)`` per Section 4.1.1.

    Note the two deliberate erasures: repetition has no free variables, and
    conditions add none.
    """
    if isinstance(pattern, (NodePattern, EdgePattern)):
        return frozenset() if pattern.var is None else frozenset({pattern.var})
    if isinstance(pattern, PatternConcat):
        result: frozenset = frozenset()
        for part in pattern.parts:
            result |= free_variables(part)
        return result
    if isinstance(pattern, PatternUnion):
        return free_variables(pattern.left)
    if isinstance(pattern, PatternRepeat):
        return frozenset()
    if isinstance(pattern, PatternCondition):
        return free_variables(pattern.inner)
    raise TypeError(f"not a CoreGQL pattern: {pattern!r}")


def pattern_size(pattern: Pattern) -> int:
    """AST size, used by planners and tests."""
    if isinstance(pattern, (NodePattern, EdgePattern)):
        return 1
    if isinstance(pattern, PatternConcat):
        return 1 + sum(pattern_size(part) for part in pattern.parts)
    if isinstance(pattern, PatternUnion):
        return 1 + pattern_size(pattern.left) + pattern_size(pattern.right)
    if isinstance(pattern, (PatternRepeat, PatternCondition)):
        return 1 + pattern_size(pattern.inner)
    raise TypeError(f"not a CoreGQL pattern: {pattern!r}")
