"""CoreGQL queries: relational algebra over pattern relations (Section 4.1.3).

A :class:`CoreGQLQuery` pairs a relational algebra expression with a mapping
from relation names to ``(pattern, Omega)`` definitions — the symbols
``R^pi_Omega`` of the paper.  Pattern relations are materialized lazily when
the algebra evaluator first references them.

The worked example of Section 4.1.3 — nodes ``u`` with two distinct
neighbours sharing a property value — appears in
:func:`section_413_example_query` and is exercised by the tests and by
experiment E26.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.coregql.outputs import Omega, pattern_relation
from repro.coregql.patterns import EdgePattern, NodePattern, Pattern, PatternConcat
from repro.graph.property_graph import PropertyGraph
from repro.relalg.algebra import (
    AlgebraExpr,
    AttrCompare,
    And,
    Join,
    Projection,
    RelRef,
    Selection,
    evaluate_algebra,
)
from repro.relalg.relation import Relation


@dataclass
class CoreGQLQuery:
    """An algebra expression over named ``R^pi_Omega`` pattern relations."""

    expression: AlgebraExpr
    pattern_relations: Mapping[object, tuple[Pattern, Omega]] = field(
        default_factory=dict
    )

    def evaluate(self, graph: PropertyGraph) -> Relation:
        catalog = _LazyCatalog(self.pattern_relations, graph)
        return evaluate_algebra(self.expression, catalog)


class _LazyCatalog:
    """Materializes pattern relations on first access."""

    def __init__(self, definitions, graph):
        self._definitions = definitions
        self._graph = graph
        self._cache: dict = {}

    def __getitem__(self, name):
        if name not in self._cache:
            pattern, omega = self._definitions[name]
            self._cache[name] = pattern_relation(pattern, omega, self._graph)
        return self._cache[name]


def section_413_example_query(
    shared_prop: str = "p", output_prop: str = "s"
) -> CoreGQLQuery:
    """The paper's worked CoreGQL query.

    "return nodes u and values of their property s such that u is connected
    to two different nodes u1, u2 with the same value of property p":

    .. math::
        \\pi_{x, x.s}(\\sigma_{x1 != x2 \\wedge x1.p = x2.p}
                      (R^{\\pi_1}_{\\Omega_1} \\bowtie R^{\\pi_2}_{\\Omega_2}))

    with patterns ``pi_i = (x) -> (x_i)`` and
    ``Omega_i = (x, x.s, x_i, x_i.p)``.
    """
    patterns = {}
    for index in (1, 2):
        pattern = PatternConcat(
            (NodePattern("x"), EdgePattern(None), NodePattern(f"x{index}"))
        )
        omega = Omega.of(
            "x", ("x", output_prop), f"x{index}", (f"x{index}", shared_prop)
        )
        patterns[f"R{index}"] = (pattern, omega)

    expression = Projection(
        Selection(
            Join(RelRef("R1"), RelRef("R2")),
            And(
                AttrCompare("x1", "!=", "x2"),
                AttrCompare(f"x1.{shared_prop}", "=", f"x2.{shared_prop}"),
            ),
        ),
        ("x", f"x.{output_prop}"),
    )
    return CoreGQLQuery(expression=expression, pattern_relations=patterns)
