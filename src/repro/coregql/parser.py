"""ASCII-art syntax for CoreGQL patterns.

CoreGQL shares the surface syntax of the GQL layer
(:mod:`repro.gql.parser`); this module translates the shared AST into the
Section 4.1.1 pattern calculus:

* node/edge labels become ``l(x)`` conditions (CoreGQL keeps labels in the
  condition language, Figure 4) — anonymous labeled elements get a fresh
  internal variable to hang the condition on;
* ``WHERE`` conditions become ``pi<theta>``;
* quantifiers become ``pi^{n..m}`` (erasing free variables, per the FV
  rules);
* disjunction requires both branches to bind the same variables, as
  CoreGQL's null-freedom demands.
"""

from __future__ import annotations

import itertools

from repro.coregql.conditions import (
    CondAnd,
    CondNot,
    CondOr,
    CoreCondition,
    LabelIs,
    PropCompare,
    PropConstCompare,
)
from repro.coregql.patterns import (
    EdgePattern,
    NodePattern,
    Pattern,
    PatternConcat,
    PatternCondition,
    PatternRepeat,
    PatternUnion,
)
from repro.gql.ast import (
    Alt,
    BAnd,
    BNot,
    BOr,
    BoolExpr,
    Cmp,
    EdgePat,
    GPattern,
    NodePat,
    Quant,
    Seq,
    Where,
)
from repro.gql.parser import parse_gql_pattern


def _convert_condition(expr: BoolExpr) -> CoreCondition:
    if isinstance(expr, BAnd):
        return CondAnd(_convert_condition(expr.left), _convert_condition(expr.right))
    if isinstance(expr, BOr):
        return CondOr(_convert_condition(expr.left), _convert_condition(expr.right))
    if isinstance(expr, BNot):
        return CondNot(_convert_condition(expr.inner))
    if isinstance(expr, Cmp):
        if expr.rhs_is_const:
            return PropConstCompare(expr.var, expr.prop, expr.op, expr.const)
        return PropCompare(expr.var, expr.prop, expr.op, expr.rhs_var, expr.rhs_prop)
    raise TypeError(f"not a condition: {expr!r}")


class _Converter:
    def __init__(self) -> None:
        self._fresh = itertools.count()

    def _fresh_var(self) -> str:
        return f"__anon{next(self._fresh)}"

    def convert(self, pattern: GPattern) -> Pattern:
        if isinstance(pattern, NodePat):
            return self._element(pattern.var, pattern.label, NodePattern)
        if isinstance(pattern, EdgePat):
            return self._element(pattern.var, pattern.label, EdgePattern)
        if isinstance(pattern, Seq):
            return PatternConcat(tuple(self.convert(part) for part in pattern.parts))
        if isinstance(pattern, Alt):
            parts = [self.convert(part) for part in pattern.parts]
            result = parts[0]
            for part in parts[1:]:
                result = PatternUnion(result, part)
            return result
        if isinstance(pattern, Quant):
            return PatternRepeat(self.convert(pattern.inner), pattern.low, pattern.high)
        if isinstance(pattern, Where):
            return PatternCondition(
                self.convert(pattern.inner), _convert_condition(pattern.condition)
            )
        raise TypeError(f"not an ASCII pattern: {pattern!r}")

    def _element(self, var, label, constructor) -> Pattern:
        if label is None:
            return constructor(var)
        effective_var = var if var is not None else self._fresh_var()
        return PatternCondition(
            constructor(effective_var), LabelIs(effective_var, label)
        )


def parse_coregql_pattern(text: str) -> Pattern:
    """Parse an ASCII-art pattern into the CoreGQL calculus.

    Note: a labeled anonymous element introduces an internal fresh variable
    (``__anonN``); it is free in the pattern, so projections via Omega
    should simply not mention it.
    """
    return _Converter().convert(parse_gql_pattern(text))
