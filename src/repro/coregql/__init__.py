"""CoreGQL (Section 4): a pattern calculus plus relational algebra.

The three components of the abstraction:

1. patterns (:mod:`~repro.coregql.patterns`) with the Figure 4 semantics
   (:mod:`~repro.coregql.semantics`) and conditions
   (:mod:`~repro.coregql.conditions`);
2. pattern outputs ``pi_Omega`` turning matches into first-normal-form
   relations (:mod:`~repro.coregql.outputs`);
3. relational algebra over those relations (:mod:`~repro.coregql.language`,
   built on :mod:`repro.relalg`).

The free-variable rules make the 1NF guarantee structural: repetition
erases free variables (no lists) and both union branches must bind the same
variables (no nulls).
"""

from repro.coregql.patterns import (
    EdgePattern,
    NodePattern,
    PatternConcat,
    PatternCondition,
    PatternRepeat,
    PatternUnion,
    free_variables,
)
from repro.coregql.conditions import (
    CondAnd,
    CondNot,
    CondOr,
    LabelIs,
    PropCompare,
    PropConstCompare,
)
from repro.coregql.semantics import pattern_paths, pattern_triples
from repro.coregql.outputs import Omega, pattern_relation
from repro.coregql.language import CoreGQLQuery
from repro.coregql.parser import parse_coregql_pattern

__all__ = [
    "NodePattern",
    "EdgePattern",
    "PatternConcat",
    "PatternUnion",
    "PatternRepeat",
    "PatternCondition",
    "free_variables",
    "LabelIs",
    "PropCompare",
    "PropConstCompare",
    "CondAnd",
    "CondOr",
    "CondNot",
    "pattern_paths",
    "pattern_triples",
    "Omega",
    "pattern_relation",
    "CoreGQLQuery",
    "parse_coregql_pattern",
]
