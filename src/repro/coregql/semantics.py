"""The Figure 4 semantics of CoreGQL patterns.

Two evaluators are provided:

* :func:`pattern_paths` — the literal semantics: the set of pairs
  ``(p, mu)`` of a path and a binding of the free variables.  This set can
  be infinite under unbounded repetition on cyclic graphs, so the evaluator
  either takes a ``max_length`` bound or raises
  :class:`~repro.errors.InfiniteResultError`.

* :func:`pattern_triples` — the *endpoint* semantics: the set of
  ``(src(p), tgt(p), mu)`` triples.  Because repetition erases bindings
  (``FV(pi^{n..m}) = {}``), this set is always finite and is exactly what
  the relational layer of CoreGQL needs; unbounded repetition becomes a
  transitive closure.

The test suite checks that on acyclic graphs the two agree.
"""

from __future__ import annotations

from repro.errors import InfiniteResultError
from repro.coregql.patterns import (
    EdgePattern,
    NodePattern,
    Pattern,
    PatternConcat,
    PatternCondition,
    PatternRepeat,
    PatternUnion,
)
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph

Binding = tuple  # sorted tuple of (var, element) pairs


def _freeze(mu: dict) -> Binding:
    return tuple(sorted(mu.items(), key=repr))


def _compatible(mu1: Binding, mu2: Binding) -> "Binding | None":
    """``mu1 ~ mu2`` and their merge ``mu1 |><| mu2`` (None if incompatible)."""
    left = dict(mu1)
    for var, value in mu2:
        if var in left:
            if left[var] != value:
                return None
        else:
            left[var] = value
    return _freeze(left)


# ----------------------------------------------------------------------
# path-level semantics
# ----------------------------------------------------------------------
def pattern_paths(
    pattern: Pattern,
    graph: PropertyGraph,
    max_length: "int | None" = None,
    *,
    stats=None,
) -> set[tuple[Path, Binding]]:
    """``[[pi]]_G`` as (path, binding) pairs; see module docstring.

    ``stats`` (an :class:`~repro.engine.stats.EngineStats`) collects edge
    scan counters when provided.
    """
    return _paths(pattern, graph, max_length, stats)


def _paths(pattern, graph, bound, stats=None) -> set[tuple[Path, Binding]]:
    if isinstance(pattern, NodePattern):
        return {
            (
                Path.trivial(graph, node),
                _freeze({pattern.var: node}) if pattern.var is not None else (),
            )
            for node in graph.iter_nodes()
        }
    if isinstance(pattern, EdgePattern):
        results = set()
        if bound is not None and bound < 1:
            return results
        for edge, src, tgt, _label in graph.iter_edge_records():
            mu = _freeze({pattern.var: edge}) if pattern.var is not None else ()
            results.add((Path.of(graph, (src, edge, tgt)), mu))
        if stats is not None:
            stats.count("edges_scanned", graph.num_edges)
        return results
    if isinstance(pattern, PatternConcat):
        current = _paths(pattern.parts[0], graph, bound, stats)
        for part in pattern.parts[1:]:
            step = _paths(part, graph, bound, stats)
            combined = set()
            for path1, mu1 in current:
                for path2, mu2 in step:
                    if path1.tgt != path2.src:
                        continue
                    merged = _compatible(mu1, mu2)
                    if merged is None:
                        continue
                    joined = path1.concat(path2)
                    if bound is not None and len(joined) > bound:
                        continue
                    combined.add((joined, merged))
            current = combined
        return current
    if isinstance(pattern, PatternUnion):
        return _paths(pattern.left, graph, bound, stats) | _paths(
            pattern.right, graph, bound, stats
        )
    if isinstance(pattern, PatternCondition):
        return {
            (path, mu)
            for path, mu in _paths(pattern.inner, graph, bound, stats)
            if pattern.condition(graph, dict(mu))
        }
    if isinstance(pattern, PatternRepeat):
        return _repeat_paths(pattern, graph, bound, stats)
    raise TypeError(f"not a CoreGQL pattern: {pattern!r}")


def _repeat_paths(pattern: PatternRepeat, graph, bound, stats=None):
    inner = _paths(pattern.inner, graph, bound, stats)
    inner_paths = {path for path, _mu in inner}  # bindings are erased

    # current = [[pi]]^j as a set of paths; j starts at 0 (trivial paths).
    current = {Path.trivial(graph, node) for node in graph.iter_nodes()}
    accumulated: set[Path] = set()
    iteration = 0
    safety_cap = graph.num_nodes + graph.num_edges + 1
    seen_levels: set[frozenset] = set()
    while True:
        in_window = iteration >= pattern.low and (
            pattern.high is None or iteration <= pattern.high
        )
        if in_window:
            accumulated |= current
            if pattern.high is None:
                level = frozenset(current)
                if level in seen_levels:
                    break  # the level sets cycle; nothing new can appear
                seen_levels.add(level)
        if pattern.high is not None and iteration >= pattern.high:
            break
        extended = set()
        for path1 in current:
            for path2 in inner_paths:
                if path1.tgt != path2.src:
                    continue
                joined = path1.concat(path2)
                if bound is not None and len(joined) > bound:
                    continue
                extended.add(joined)
        current = extended
        iteration += 1
        if not current:
            break
        if (
            pattern.high is None
            and bound is None
            and any(len(path) > safety_cap for path in current)
        ):
            raise InfiniteResultError(
                "unbounded repetition over a cyclic graph yields "
                "infinitely many paths; pass max_length"
            )
    return {(path, ()) for path in accumulated}


# ----------------------------------------------------------------------
# endpoint (triple) semantics
# ----------------------------------------------------------------------
def pattern_triples(
    pattern: Pattern, graph: PropertyGraph, *, stats=None
) -> set[tuple]:
    """``{(src(p), tgt(p), mu) | (p, mu) in [[pi]]_G}`` — always finite."""
    if isinstance(pattern, NodePattern):
        return {
            (
                node,
                node,
                _freeze({pattern.var: node}) if pattern.var is not None else (),
            )
            for node in graph.iter_nodes()
        }
    if isinstance(pattern, EdgePattern):
        results = set()
        for edge, src, tgt, _label in graph.iter_edge_records():
            mu = _freeze({pattern.var: edge}) if pattern.var is not None else ()
            results.add((src, tgt, mu))
        if stats is not None:
            stats.count("edges_scanned", graph.num_edges)
        return results
    if isinstance(pattern, PatternConcat):
        current = pattern_triples(pattern.parts[0], graph, stats=stats)
        for part in pattern.parts[1:]:
            step = pattern_triples(part, graph, stats=stats)
            by_src: dict = {}
            for src, tgt, mu in step:
                by_src.setdefault(src, []).append((tgt, mu))
            combined = set()
            joined = 0
            for src1, tgt1, mu1 in current:
                for tgt2, mu2 in by_src.get(tgt1, ()):
                    joined += 1
                    merged = _compatible(mu1, mu2)
                    if merged is not None:
                        combined.add((src1, tgt2, merged))
            if stats is not None:
                stats.count("edges_relaxed", joined)
            current = combined
        return current
    if isinstance(pattern, PatternUnion):
        return pattern_triples(pattern.left, graph, stats=stats) | pattern_triples(
            pattern.right, graph, stats=stats
        )
    if isinstance(pattern, PatternCondition):
        return {
            (src, tgt, mu)
            for src, tgt, mu in pattern_triples(pattern.inner, graph, stats=stats)
            if pattern.condition(graph, dict(mu))
        }
    if isinstance(pattern, PatternRepeat):
        inner_pairs = {
            (src, tgt)
            for src, tgt, _mu in pattern_triples(pattern.inner, graph, stats=stats)
        }
        by_src: dict = {}
        for src, tgt in inner_pairs:
            by_src.setdefault(src, set()).add(tgt)
        # current = the pairs of [[pi]]^j; j starts at 0 (identity pairs).
        current = {(node, node) for node in graph.iter_nodes()}
        answer: set[tuple] = set()
        iteration = 0
        seen_levels: set[frozenset] = set()
        while True:
            in_window = iteration >= pattern.low and (
                pattern.high is None or iteration <= pattern.high
            )
            if in_window:
                answer |= current
                if pattern.high is None:
                    level = frozenset(current)
                    if level in seen_levels:
                        break  # the level sets cycle: closure reached
                    seen_levels.add(level)
            if pattern.high is not None and iteration >= pattern.high:
                break
            current = {
                (src1, tgt2)
                for src1, tgt1 in current
                for tgt2 in by_src.get(tgt1, ())
            }
            iteration += 1
            if not current:
                break
        return {(src, tgt, ()) for src, tgt in answer}
    raise TypeError(f"not a CoreGQL pattern: {pattern!r}")
