"""CoreGQL conditions theta (Section 4.1.1, Figure 4).

``theta := x.k = x'.k' | x.k < x'.k' | l(x) | theta or theta
         | theta and theta | not theta``

plus the obvious derived comparisons.  Satisfaction ``mu |= theta`` needs
the graph (for rho and lambda) and the binding mu; following Figure 4, a
comparison whose property is undefined is simply false.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph


class CoreCondition:
    """Base class; instances are callable as ``cond(graph, mu)``."""

    __slots__ = ()

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        raise NotImplementedError

    def __and__(self, other: "CoreCondition") -> "CoreCondition":
        return CondAnd(self, other)

    def __or__(self, other: "CoreCondition") -> "CoreCondition":
        return CondOr(self, other)

    def __invert__(self) -> "CoreCondition":
        return CondNot(self)


def _compare(op: str, left, right) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ValueError(f"unknown operator {op!r}")


@dataclass(frozen=True)
class PropCompare(CoreCondition):
    """``x.k op y.k'`` — compare two bound elements' property values."""

    left_var: object
    left_prop: object
    op: str
    right_var: object
    right_prop: object

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        if self.left_var not in mu or self.right_var not in mu:
            return False
        left_obj, right_obj = mu[self.left_var], mu[self.right_var]
        if not graph.has_property(left_obj, self.left_prop):
            return False
        if not graph.has_property(right_obj, self.right_prop):
            return False
        return _compare(
            self.op,
            graph.get_property(left_obj, self.left_prop),
            graph.get_property(right_obj, self.right_prop),
        )


@dataclass(frozen=True)
class PropConstCompare(CoreCondition):
    """``x.k op c`` — compare a property against a constant."""

    var: object
    prop: object
    op: str
    value: object

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        if self.var not in mu:
            return False
        obj = mu[self.var]
        if not graph.has_property(obj, self.prop):
            return False
        return _compare(self.op, graph.get_property(obj, self.prop), self.value)


@dataclass(frozen=True)
class LabelIs(CoreCondition):
    """``l(x)`` — the bound element carries label ``l``."""

    var: object
    label: object

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        if self.var not in mu:
            return False
        return graph.object_label(mu[self.var]) == self.label


@dataclass(frozen=True)
class CondAnd(CoreCondition):
    left: CoreCondition
    right: CoreCondition

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        return self.left(graph, mu) and self.right(graph, mu)


@dataclass(frozen=True)
class CondOr(CoreCondition):
    left: CoreCondition
    right: CoreCondition

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        return self.left(graph, mu) or self.right(graph, mu)


@dataclass(frozen=True)
class CondNot(CoreCondition):
    inner: CoreCondition

    def __call__(self, graph: PropertyGraph, mu: dict) -> bool:
        return not self.inner(graph, mu)
