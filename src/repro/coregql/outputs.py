"""Pattern outputs ``pi_Omega`` (Section 4.1.2).

``Omega`` is a sequence whose entries are variables ``x`` or property
accesses ``x.k``.  A binding ``mu`` is *compatible* with Omega when every
referenced variable is bound and every referenced property is defined —
incompatible matches simply contribute no row, which is how CoreGQL stays
null-free.  The result is a first-normal-form relation over the attributes
of Omega.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coregql.patterns import Pattern, free_variables
from repro.coregql.semantics import pattern_triples
from repro.errors import QueryError
from repro.graph.property_graph import PropertyGraph
from repro.relalg.relation import Relation


@dataclass(frozen=True)
class Omega:
    """An output sequence; entries are ``"x"`` or ``("x", "k")`` pairs."""

    entries: tuple

    @classmethod
    def of(cls, *entries) -> "Omega":
        """``Omega.of("x", ("x", "s"), "y")`` — strings are variables,
        2-tuples are ``x.k`` property accesses.

        A string containing a dot is split into a property access, so
        ``Omega.of("x.s")`` equals ``Omega.of(("x", "s"))``.
        """
        normalized = []
        for entry in entries:
            if isinstance(entry, str) and "." in entry:
                var, prop = entry.split(".", 1)
                normalized.append((var, prop))
            else:
                normalized.append(entry)
        return cls(tuple(normalized))

    def attributes(self) -> tuple:
        """Attribute names of the produced relation: ``x`` or ``x.k``."""
        names = []
        for entry in self.entries:
            if isinstance(entry, tuple):
                names.append(f"{entry[0]}.{entry[1]}")
            else:
                names.append(str(entry))
        return tuple(names)

    def variables(self) -> frozenset:
        found = set()
        for entry in self.entries:
            found.add(entry[0] if isinstance(entry, tuple) else entry)
        return frozenset(found)


def pattern_relation(
    pattern: Pattern, omega: Omega, graph: PropertyGraph
) -> Relation:
    """``[[pi_Omega]]_G`` — the 1NF relation over Omega's attributes.

    Omega may only reference free variables of the pattern (anything else
    could never be bound, which we surface as an error rather than an empty
    relation).
    """
    unknown = omega.variables() - free_variables(pattern)
    if unknown:
        raise QueryError(
            f"Omega references non-free variables {sorted(map(str, unknown))!r}"
        )
    attributes = omega.attributes()
    rows = set()
    for _src, _tgt, mu in pattern_triples(pattern, graph):
        binding = dict(mu)
        row = []
        compatible = True
        for entry in omega.entries:
            if isinstance(entry, tuple):
                var, prop = entry
                if var not in binding or not graph.has_property(
                    binding[var], prop
                ):
                    compatible = False
                    break
                row.append(graph.get_property(binding[var], prop))
            else:
                if entry not in binding:
                    compatible = False
                    break
                row.append(binding[entry])
        if compatible:
            rows.add(tuple(row))
    return Relation(attributes, rows)
