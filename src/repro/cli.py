"""Command-line interface: run the paper's query languages on JSON graphs.

Examples (``fig2`` / ``fig3`` name the paper's built-in bank graphs; any
other value is read as a graph JSON file in the
:mod:`repro.graph.serialize` format)::

    python -m repro rpq fig2 "Transfer*"
    python -m repro rpq mygraph.json "a.(a+b)*" --source v0
    python -m repro crpq fig2 "q(x,y) :- Transfer(x,y), Transfer(y,x)"
    python -m repro paths fig3 "Transfer+" a3 a5 --mode simple
    python -m repro dlrpq fig3 "(_)[Transfer][amount < 4500000](_)" a3 a4
    python -m repro experiment E14
"""

from __future__ import annotations

import argparse
import sys

from repro.graph.edge_labeled import EdgeLabeledGraph


def _load_graph(spec: str) -> EdgeLabeledGraph:
    if spec == "fig2":
        from repro.graph.datasets import figure2_graph

        return figure2_graph()
    if spec == "fig3":
        from repro.graph.datasets import figure3_graph

        return figure3_graph()
    from repro.graph.serialize import loads

    with open(spec, encoding="utf-8") as handle:
        return loads(handle.read())


def _engine_options(args: argparse.Namespace):
    """The (use_index, use_csr, stats) triple the engine commands share."""
    from repro.engine.stats import EngineStats

    use_index = not getattr(args, "no_index", False)
    use_csr = not getattr(args, "no_csr", False)
    stats = EngineStats() if getattr(args, "stats", False) else None
    return use_index, use_csr, stats


def _report_stats(stats) -> None:
    if stats is not None:
        print(stats.render(), file=sys.stderr)


def _make_budget(args: argparse.Namespace):
    """The query budget the ``--timeout/--max-rows/--max-states`` flags ask
    for, or None when none were given."""
    from repro.engine.limits import make_budget

    return make_budget(
        timeout=getattr(args, "timeout", None),
        max_rows=getattr(args, "max_rows", None),
        max_states=getattr(args, "max_states", None),
    )


def _report_trip(exc) -> int:
    """Tell the user which limit tripped; 2 is the partial-result exit code."""
    details = ", ".join(
        f"{key}={value}" for key, value in sorted(exc.details().items())
    )
    print(f"# budget exceeded ({details}); answers above are partial",
          file=sys.stderr)
    return 2


def _cmd_rpq(args: argparse.Namespace) -> int:
    from repro.engine.limits import BudgetExceeded
    from repro.rpq.evaluation import evaluate_rpq

    graph = _load_graph(args.graph)
    sources = [args.source] if args.source else None
    use_index, use_csr, stats = _engine_options(args)
    try:
        pairs = evaluate_rpq(
            args.query, graph, sources=sources, use_index=use_index,
            use_csr=use_csr, stats=stats, budget=_make_budget(args),
        )
    except BudgetExceeded as exc:
        for source, target in sorted(exc.partial or (), key=repr):
            print(f"{source}\t{target}")
        return _report_trip(exc)
    for source, target in sorted(pairs, key=repr):
        print(f"{source}\t{target}")
    print(f"# {len(pairs)} pairs", file=sys.stderr)
    _report_stats(stats)
    return 0


def _cmd_crpq(args: argparse.Namespace) -> int:
    from repro.crpq.evaluation import evaluate_crpq
    from repro.engine.limits import BudgetExceeded

    graph = _load_graph(args.graph)
    use_index, use_csr, stats = _engine_options(args)
    try:
        rows = evaluate_crpq(
            args.query, graph, use_index=use_index, use_csr=use_csr,
            stats=stats, budget=_make_budget(args),
        )
    except BudgetExceeded as exc:
        for row in sorted(exc.partial or (), key=repr):
            print("\t".join(str(value) for value in row))
        return _report_trip(exc)
    for row in sorted(rows, key=repr):
        print("\t".join(str(value) for value in row))
    print(f"# {len(rows)} rows", file=sys.stderr)
    _report_stats(stats)
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    from repro.engine.limits import BudgetExceeded
    from repro.rpq.path_modes import matching_paths

    graph = _load_graph(args.graph)
    # Path enumeration walks paths object-by-object and never enters the
    # kernel relation loops, so the CSR flag is irrelevant here.
    use_index, _use_csr, stats = _engine_options(args)
    count = 0
    try:
        # Paths stream out as they are found, so everything printed before
        # a budget trip *is* the partial result.
        for path in matching_paths(
            args.query, graph, args.source, args.target, mode=args.mode,
            limit=args.limit, use_index=use_index, stats=stats,
            budget=_make_budget(args),
        ):
            print(" -> ".join(str(obj) for obj in path.objects))
            count += 1
    except BudgetExceeded as exc:
        return _report_trip(exc)
    print(f"# {count} paths ({args.mode})", file=sys.stderr)
    _report_stats(stats)
    return 0


def _cmd_dlrpq(args: argparse.Namespace) -> int:
    from repro.datatests.dlrpq import evaluate_dlrpq
    from repro.engine.limits import BudgetExceeded

    graph = _load_graph(args.graph)
    count = 0
    try:
        for binding in evaluate_dlrpq(
            args.query, graph, args.source, args.target, mode=args.mode,
            limit=args.limit, budget=_make_budget(args),
        ):
            lists = dict(binding.mu.items())
            suffix = f"   lists: {lists}" if lists else ""
            print(" -> ".join(str(obj) for obj in binding.path.objects) + suffix)
            count += 1
    except BudgetExceeded as exc:
        return _report_trip(exc)
    print(f"# {count} path bindings ({args.mode})", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.engine.explain import explain_query, render_explain

    graph = _load_graph(args.graph)
    report = explain_query(args.query, graph, planner=args.planner)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_explain(report))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.engine.explain import profile_query, render_profile

    if getattr(args, "shards", None):
        return _profile_via_shards(args)
    graph = _load_graph(args.graph)
    report = profile_query(args.query, graph, planner=args.planner)
    stats = report.pop("_stats")
    if args.json:
        report.pop("_tracer")
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_profile(report))
        print(stats.render(), file=sys.stderr)
    return 0


def _profile_via_shards(args: argparse.Namespace) -> int:
    """Profile a query over a shard fleet: one stitched cross-process tree.

    The coordinator roots the trace (``coordinator.rpq`` over per-round
    ``coordinator.round`` spans); every shard's ``server.request`` subtree
    comes back grafted under its round with shard id, wire bytes and
    latency attribution (DESIGN.md §12).
    """
    import json

    from repro.distributed import ShardCoordinator
    from repro.engine.explain import query_kind
    from repro.engine.tracing import Tracer, use_tracer
    from repro.server.client import ConnectionLost, ServerError
    from repro.server.protocol import ShardUnavailableError

    addresses = [
        _parse_address(part) for part in args.shards.split(",") if part
    ]
    graph = _load_graph(args.graph)
    tracer = Tracer()
    try:
        with use_tracer(tracer), ShardCoordinator(
            addresses, slow_round_ms=args.slow_round_ms
        ) as coordinator:
            name = f"cli:{args.graph}"
            coordinator.partition_graph(name, graph, strategy=args.partition)
            if query_kind(args.query) == "crpq":
                rows = coordinator.evaluate_crpq(name, args.query)
            else:
                rows = coordinator.evaluate_rpq(name, args.query)
            metrics = coordinator.metrics.as_dict()
    except ShardUnavailableError as exc:
        print(f"error [shard_unavailable]: {exc.message}", file=sys.stderr)
        return 1
    except (ConnectionLost, OSError) as exc:
        print(f"error: cannot reach shard fleet: {exc}", file=sys.stderr)
        return 1
    except ServerError as exc:
        print(f"error [{exc.code}]: {exc.message}", file=sys.stderr)
        return 1
    if args.trace_out:
        written = tracer.write_jsonl(args.trace_out, drain=False)
        print(
            f"# wrote {written} span trees to {args.trace_out}",
            file=sys.stderr,
        )
    if args.json:
        print(
            json.dumps(
                {
                    "count": len(rows),
                    "spans": tracer.as_dicts(),
                    "coordinator_metrics": metrics,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 0
    print(tracer.render())
    print(f"# {len(rows)} answers", file=sys.stderr)
    return 0


def _first_result_mismatch(log, expected, actual) -> str:
    """Describe the first query whose batch answers differ from the seed."""
    from repro.engine.kernel import query_text

    for position, (want, got) in enumerate(zip(expected, actual)):
        if want == got:
            continue
        entry = log[position]
        expression = entry[1] if isinstance(entry, tuple) else entry
        differing = sorted(want ^ got, key=repr)[0]
        side = "missing from batch" if differing in want else "extra in batch"
        return (
            f"query #{position} {query_text(expression)!r}: "
            f"first differing answer {differing!r} ({side}; "
            f"seed={len(want)} answers, batch={len(got)})"
        )
    return "result lists differ in length"


def _cmd_workload_run(args: argparse.Namespace) -> int:
    import json

    from repro.engine.stats import EngineStats
    from repro.workloads.querylog import generate_query_log
    from repro.workloads.runner import run_query_log, run_query_log_sequential

    if args.graph == "random":
        from repro.graph.generators import random_graph

        labels = tuple(args.labels.split(",")) if args.labels else tuple("abcdefgh")
        graph = random_graph(
            args.nodes, args.edges, labels=labels, seed=args.graph_seed
        )
    else:
        graph = _load_graph(args.graph)
        labels = (
            tuple(args.labels.split(","))
            if args.labels
            else tuple(sorted(map(str, graph.labels)))
        )
    log = generate_query_log(args.queries, labels=labels, seed=args.log_seed)

    tracing = bool(args.trace_out) or args.slow_log > 0
    if tracing:
        from repro.engine.tracing import Tracer, use_tracer

        tracer_scope = use_tracer(Tracer())
    else:
        from contextlib import nullcontext

        tracer_scope = nullcontext()
    # The stats object lives out here so that an interrupt landing outside
    # the batch fan-out (during parse/compile, say) still has telemetry to
    # flush — whatever was folded in before the signal.
    stats = EngineStats()
    report = None
    try:
        with tracer_scope:
            report = run_query_log(
                graph,
                log,
                jobs=args.jobs,
                fork=args.fork,
                multi_source=not args.per_source,
                slow_log=args.slow_log,
                stats=stats,
                budget=_make_budget(args),
            )
    except KeyboardInterrupt:
        pass
    interrupted = report is None or report.interrupted

    if report is not None:
        digest = report.summary()
        if not args.stats:
            digest.pop("engine_stats", None)
    else:
        digest = {"interrupted": True, "engine_stats": stats.as_dict()}
    if args.trace_out:
        timings = report.timings if report is not None else []
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for entry in timings:
                handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        digest["trace_out"] = args.trace_out
        print(
            f"# wrote {len(timings)} query traces to {args.trace_out}",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.engine.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.fold_stats(stats)
        histogram = report.latency_histogram if report is not None else None
        if histogram is not None:
            registry.histogram(
                "query_latency_seconds", histogram.bounds
            ).merge(histogram)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.render_prometheus())
        digest["metrics_out"] = args.metrics_out
    if interrupted:
        # Partial flush done; the conventional 128+SIGINT exit code tells
        # scripts the run was cut short but telemetry survived.
        print(json.dumps(digest, indent=2, sort_keys=True))
        print("# interrupted: partial telemetry flushed", file=sys.stderr)
        return 130
    if args.baseline:
        baseline = run_query_log_sequential(graph, log)
        if baseline.results != report.results:
            detail = _first_result_mismatch(log, baseline.results, report.results)
            print(
                f"BASELINE MISMATCH: batch answers differ — {detail}",
                file=sys.stderr,
            )
            return 1
        digest["baseline_wall_seconds"] = round(baseline.wall_seconds, 6)
        digest["speedup_vs_seed"] = round(
            baseline.wall_seconds / max(report.wall_seconds, 1e-9), 2
        )
    print(json.dumps(digest, indent=2, sort_keys=True))
    if args.stats:
        print(report.stats.render(), file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.admission import AdmissionController
    from repro.server.app import QueryServer
    from repro.server.service import GraphCatalog, QueryService

    catalog = GraphCatalog.with_builtins(
        args.data_dir, max_resident_edges=args.max_resident_edges
    )
    for spec in args.graphs or ():
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(
                f"--graphs entries must be name=path.json, got {spec!r}"
            )
        catalog.register(name, _load_graph(path))
    admission = AdmissionController(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        query_timeout=args.query_timeout,
        max_request_bytes=args.max_request_bytes,
    )
    service = QueryService(catalog, answer_cache_size=args.answer_cache)
    server = QueryServer(
        service,
        host=args.host,
        port=args.port,
        admission=admission,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        announce=True,
    )
    try:
        asyncio.run(server.serve())
    except OSError as exc:
        # A taken port (or unroutable host) must be a clean one-line
        # failure, not a traceback: supervisors — including the shard
        # launcher — read this line to report *which* worker failed.
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print("# drained cleanly", file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Offline store maintenance: import/export/ls/compact on a data dir."""
    import json

    from repro.errors import StorageError
    from repro.storage.store import GraphStore

    try:
        with GraphStore(args.data_dir) as store:
            if args.store_command == "import":
                graph = _load_graph(args.file)
                info = store.put_graph(args.name, graph)
                print(
                    f"imported {args.name!r}: {info['nodes']} nodes, "
                    f"{info['edges']} edges, version {info['version']}",
                    file=sys.stderr,
                )
            elif args.store_command == "export":
                from repro.graph.serialize import dumps

                text = dumps(store.load_graph(args.name), indent=2) + "\n"
                if args.file == "-":
                    sys.stdout.write(text)
                else:
                    with open(args.file, "w", encoding="utf-8") as handle:
                        handle.write(text)
            elif args.store_command == "ls":
                manifest = store.manifest()
                if args.json:
                    print(json.dumps(manifest, indent=2, sort_keys=True))
                else:
                    for info in manifest:
                        print(
                            f"{info['name']}\t{info['kind']}\t"
                            f"nodes={info['nodes']}\tedges={info['edges']}\t"
                            f"version={info['version']}\t"
                            f"journal={info['journal_records']}"
                        )
            elif args.store_command == "compact":
                names = [args.name] if args.name else store.names()
                for name in names:
                    info = store.compact(name)
                    print(
                        f"compacted {name!r}: version {info['version']}, "
                        f"journal empty",
                        file=sys.stderr,
                    )
            else:  # pragma: no cover - argparse enforces the choices
                raise SystemExit(f"unknown store command {args.store_command!r}")
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _parse_address(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    return host, int(port)


def _connect(spec: str, retry=None):
    from repro.server.client import ServerClient

    return ServerClient(*_parse_address(spec), retry=retry)


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    """Launch a shard fleet, distribute the graphs, and run until signaled."""
    import json
    import signal
    import threading

    from repro.distributed import (
        FleetSupervisor,
        ShardCoordinator,
        ShardLauncher,
        ShardStartupError,
    )

    ports = None
    if args.ports:
        ports = [int(part) for part in args.ports.split(",") if part]
    launcher = ShardLauncher(
        args.shards,
        host=args.host,
        ports=ports,
        query_timeout=args.query_timeout,
    )
    supervisor = None
    if args.heartbeat_interval > 0:
        supervisor = FleetSupervisor(
            launcher,
            heartbeat_interval=args.heartbeat_interval,
            max_restarts=args.max_restarts,
        )
    try:
        # The supervisor's start() also brings the fleet up; only the
        # prober thread is deferred until the graphs are distributed, so
        # a restart during distribution cannot race the initial uploads.
        addresses = launcher.start()
    except ShardStartupError as exc:
        # The launcher relays the failed worker's own one-line error, so
        # this names both the shard and why it could not come up.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    distributed = []
    try:
        with ShardCoordinator(
            addresses,
            hedge_after=args.hedge_after,
            allow_degraded=args.allow_degraded,
            supervisor=supervisor,
        ) as coordinator:
            for spec in args.graphs or ():
                name, _, path = spec.partition("=")
                if not path:
                    raise SystemExit(
                        f"--graphs entries must be name=path.json, got {spec!r}"
                    )
                graph = _load_graph(path)
                if args.replicated:
                    info = coordinator.replicate_graph(name, graph)
                else:
                    info = coordinator.partition_graph(
                        name, graph, strategy=args.partition
                    )
                distributed.append(info)
            if supervisor is not None:
                supervisor.on_restart = coordinator.notify_restart
                supervisor.start()
            print(
                json.dumps(
                    {
                        "event": "cluster",
                        "shards": [
                            {"host": host, "port": port}
                            for host, port in addresses
                        ],
                        "graphs": distributed,
                        "supervised": supervisor is not None,
                    },
                    sort_keys=True,
                ),
                flush=True,
            )
            stop = threading.Event()
            dumper = None
            if args.metrics_out:
                def _dump_fleet_metrics() -> None:
                    merged = coordinator.cluster_metrics(
                        include_coordinator=False
                    )
                    with open(args.metrics_out, "w", encoding="utf-8") as handle:
                        handle.write(merged.render_prometheus())

                def _dump_loop() -> None:
                    # The coordinator sits idle here (the main thread only
                    # waits on the stop event), so this thread is its sole
                    # user — the not-thread-safe contract holds.
                    while True:
                        try:
                            _dump_fleet_metrics()
                        except OSError:
                            pass  # a torn shard mid-dump; next tick retries
                        if stop.wait(args.metrics_interval):
                            return

                dumper = threading.Thread(
                    target=_dump_loop, name="repro-metrics-dump", daemon=True
                )
                dumper.start()
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, lambda _signum, _frame: stop.set())
            stop.wait()
            if dumper is not None:
                dumper.join(timeout=args.metrics_interval + 5.0)
                try:
                    _dump_fleet_metrics()  # final dump while shards live
                except OSError:
                    pass
    finally:
        if supervisor is not None:
            supervisor.stop()
        else:
            launcher.stop()
    print("# cluster stopped", file=sys.stderr)
    return 0


def _query_via_shards(args: argparse.Namespace) -> int:
    """Distribute a graph across a running fleet and query it there."""
    import json

    from repro.distributed import ShardCoordinator
    from repro.engine.explain import query_kind
    from repro.engine.limits import BudgetExceeded
    from repro.server.client import ConnectionLost, ServerError
    from repro.server.protocol import ShardUnavailableError

    addresses = [
        _parse_address(part) for part in args.shards.split(",") if part
    ]
    graph = _load_graph(args.graph)
    budget = _make_budget(args)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.engine.tracing import Tracer, use_tracer

        tracer = Tracer()
        tracer_scope = use_tracer(tracer)
    else:
        from contextlib import nullcontext

        tracer = None
        tracer_scope = nullcontext()
    degraded = False
    try:
        with tracer_scope, ShardCoordinator(
            addresses,
            slow_round_ms=getattr(args, "slow_round_ms", None),
            hedge_after=getattr(args, "hedge_after", None),
            allow_degraded=getattr(args, "allow_degraded", False),
        ) as coordinator:
            name = f"cli:{args.graph}"
            if args.replicated:
                coordinator.replicate_graph(name, graph)
                # The result-dict path, not evaluate_*: hedging and the
                # degraded fallback live on replica routing, and only this
                # shape can carry the degraded marker to the caller.
                limits = {
                    "timeout": getattr(args, "timeout", None),
                    "max_rows": getattr(args, "max_rows", None),
                    "max_states": getattr(args, "max_states", None),
                }
                if query_kind(args.query) == "crpq":
                    result = coordinator.crpq(name, args.query, **limits)
                    rows = {tuple(row) for row in result["rows"]}
                else:
                    result = coordinator.rpq(
                        name, args.query, source=args.source, **limits
                    )
                    rows = {tuple(pair) for pair in result["pairs"]}
                degraded = bool(result.get("degraded"))
            else:
                coordinator.partition_graph(
                    name, graph, strategy=args.partition
                )
                if query_kind(args.query) == "crpq":
                    rows = coordinator.evaluate_crpq(
                        name, args.query, budget=budget
                    )
                else:
                    sources = [args.source] if args.source else None
                    rows = coordinator.evaluate_rpq(
                        name, args.query, sources=sources, budget=budget
                    )
    except BudgetExceeded as exc:
        for row in sorted(exc.partial or (), key=repr):
            if isinstance(row, tuple):
                print("\t".join(str(value) for value in row))
            else:
                print(row)
        return _report_trip(exc)
    except ShardUnavailableError as exc:
        print(f"error [shard_unavailable]: {exc.message}", file=sys.stderr)
        retry_after = exc.details.get("retry_after")
        if retry_after:
            print(f"# retry after {retry_after}s", file=sys.stderr)
        return 1
    except (ConnectionLost, OSError) as exc:
        print(f"error: cannot reach shard fleet: {exc}", file=sys.stderr)
        return 1
    except ServerError as exc:
        print(f"error [{exc.code}]: {exc.message}", file=sys.stderr)
        return 1
    if tracer is not None:
        written = tracer.write_jsonl(trace_out)
        print(
            f"# wrote {written} span trees to {trace_out}", file=sys.stderr
        )
    if degraded:
        print(
            "# degraded: served from the coordinator's local copy "
            "(every replica was down)",
            file=sys.stderr,
        )
    if args.json:
        print(
            json.dumps(
                {
                    "count": len(rows),
                    "rows": sorted(map(list, rows), key=repr),
                    **({"degraded": True} if degraded else {}),
                },
                sort_keys=True,
            )
        )
        return 0
    for row in sorted(rows, key=repr):
        print("\t".join(str(value) for value in row))
    print(f"# {len(rows)} answers", file=sys.stderr)
    return 0


def _cmd_cluster_stats(args: argparse.Namespace) -> int:
    """Fetch and merge every shard's metrics registry (exactly)."""
    import json

    from repro.distributed import ShardCoordinator
    from repro.server.client import ConnectionLost

    addresses = [
        _parse_address(part) for part in args.shards.split(",") if part
    ]
    try:
        with ShardCoordinator(addresses) as coordinator:
            # This coordinator exists only to ask; its own (empty)
            # registry would just add zero-count noise.
            merged = coordinator.cluster_metrics(include_coordinator=False)
    except (ConnectionLost, OSError) as exc:
        print(f"error: cannot reach shard fleet: {exc}", file=sys.stderr)
        return 1
    if args.json:
        text = json.dumps(merged.as_dict(), indent=2, sort_keys=True) + "\n"
    else:
        text = merged.render_prometheus()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# wrote merged fleet metrics to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Run one query against a *running* server (``--connect host:port``)
    or a shard fleet (``--shards host:port,host:port,...``)."""
    import json

    from repro.engine.explain import query_kind
    from repro.server.client import RetryPolicy, ServerError

    if args.shards:
        return _query_via_shards(args)
    retry = (
        RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    )
    limits = {
        "timeout": args.timeout,
        "max_rows": args.max_rows,
        "max_states": args.max_states,
    }
    try:
        with _connect(args.connect, retry=retry) as client:
            if args.explain:
                result = client.explain(args.graph, args.query)
            elif query_kind(args.query) == "crpq":
                result = client.crpq(args.graph, args.query, **limits)
            else:
                result = client.rpq(
                    args.graph, args.query, source=args.source, **limits
                )
    except ServerError as exc:
        if exc.code in ("timeout", "budget_exceeded"):
            # A structured partial result: print what the server salvaged.
            for row in exc.details.get("partial") or []:
                if isinstance(row, (list, tuple)):
                    print("\t".join(str(value) for value in row))
                else:
                    print(row)
            limit = exc.details.get("limit", exc.code)
            rows_so_far = exc.details.get("rows_so_far", "?")
            print(
                f"# budget exceeded (limit={limit}, rows_so_far={rows_so_far});"
                " answers above are partial",
                file=sys.stderr,
            )
            return 2
        print(f"error [{exc.code}]: {exc.message}", file=sys.stderr)
        return 1
    if args.json or args.explain:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
        return 0
    for row in result.get("pairs") or result.get("rows") or []:
        print("\t".join(str(value) for value in row))
    print(f"# {result['count']} answers", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_all, run_experiment

    if args.id.lower() == "all":
        for result in run_all():
            print(result.render())
            print()
        return 0
    print(run_experiment(args.id).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph query engines from 'Querying Graph Data: Where "
        "We Are and Where To Go' (PODS Companion 2025).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--stats",
            action="store_true",
            help="print engine counters/timers (cache hits, nodes expanded, "
            "phase times) to stderr after the results",
        )
        subparser.add_argument(
            "--no-index",
            action="store_true",
            help="bypass the label index and compilation cache (the naive "
            "seed evaluator; the differential-testing oracle)",
        )
        subparser.add_argument(
            "--no-csr",
            action="store_true",
            help="run the kernel on the dict data plane instead of the flat "
            "int-encoded CSR rows (the CSR differential-testing oracle)",
        )

    def add_budget_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget; on expiry, print the partial answers "
            "found so far and exit 2",
        )
        subparser.add_argument(
            "--max-rows", type=int, default=None, metavar="N",
            help="stop after N answer rows (exit 2 with exactly N rows)",
        )
        subparser.add_argument(
            "--max-states", type=int, default=None, metavar="N",
            help="cap on product-graph states visited (memory guard)",
        )

    rpq = commands.add_parser("rpq", help="evaluate an RPQ ([[R]]_G pairs)")
    rpq.add_argument("graph", help="fig2, fig3, or a graph JSON file")
    rpq.add_argument("query", help="regular path query, e.g. 'Transfer*'")
    rpq.add_argument("--source", help="restrict to one source node")
    add_engine_flags(rpq)
    add_budget_flags(rpq)
    rpq.set_defaults(handler=_cmd_rpq)

    crpq = commands.add_parser("crpq", help="evaluate a CRPQ (Datalog syntax)")
    crpq.add_argument("graph")
    crpq.add_argument("query", help="e.g. 'q(x,y) :- Transfer(x,y), owner(y,z)'")
    add_engine_flags(crpq)
    add_budget_flags(crpq)
    crpq.set_defaults(handler=_cmd_crpq)

    paths = commands.add_parser("paths", help="enumerate matching paths")
    paths.add_argument("graph")
    paths.add_argument("query")
    paths.add_argument("source")
    paths.add_argument("target")
    paths.add_argument(
        "--mode", default="shortest", choices=("all", "shortest", "simple", "trail")
    )
    paths.add_argument("--limit", type=int, default=None)
    add_engine_flags(paths)
    add_budget_flags(paths)
    paths.set_defaults(handler=_cmd_paths)

    dlrpq = commands.add_parser(
        "dlrpq", help="evaluate a dl-RPQ with data tests (Section 3.2.1)"
    )
    dlrpq.add_argument("graph")
    dlrpq.add_argument("query", help="e.g. '(_)[Transfer][amount < 4500000](_)'")
    dlrpq.add_argument("source")
    dlrpq.add_argument("target")
    dlrpq.add_argument(
        "--mode", default="shortest", choices=("all", "shortest", "simple", "trail")
    )
    dlrpq.add_argument("--limit", type=int, default=None)
    add_budget_flags(dlrpq)
    dlrpq.set_defaults(handler=_cmd_dlrpq)

    experiment = commands.add_parser(
        "experiment", help="run a DESIGN.md experiment (E1..E27 or 'all')"
    )
    experiment.add_argument("id")
    experiment.set_defaults(handler=_cmd_experiment)

    explain = commands.add_parser(
        "explain",
        help="show the plan (with cost/cardinality estimates) without "
        "executing — RPQ regex or Datalog-style CRPQ",
    )
    explain.add_argument("graph", help="fig2, fig3, or a graph JSON file")
    explain.add_argument("query", help="RPQ regex, or CRPQ if it contains ':-'")
    explain.add_argument(
        "--planner",
        default="cost",
        choices=("cost", "greedy"),
        help="atom ordering to explain for CRPQs (default: cost)",
    )
    explain.add_argument(
        "--json", action="store_true", help="machine-readable plan report"
    )
    explain.set_defaults(handler=_cmd_explain)

    profile = commands.add_parser(
        "profile",
        help="execute a query under the tracer and print its span tree "
        "(wall times, counters, estimated vs. actual cardinalities)",
    )
    profile.add_argument("graph", help="fig2, fig3, or a graph JSON file")
    profile.add_argument("query", help="RPQ regex, or CRPQ if it contains ':-'")
    profile.add_argument(
        "--planner",
        default=None,
        choices=("cost", "greedy"),
        help="CRPQ atom ordering (default: the engine's cost planner)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="print spans + engine stats (with the derived block) as JSON",
    )
    profile.add_argument(
        "--shards", metavar="H:P,H:P,...",
        help="profile against a running shard fleet instead: the graph is "
        "partitioned across it and the stitched cross-process span tree "
        "(coordinator rounds + per-shard frontier steps) is rendered",
    )
    profile.add_argument(
        "--partition", default="hash", choices=("hash", "edge-cut"),
        help="with --shards: the partitioning strategy (default hash)",
    )
    profile.add_argument(
        "--trace-out", metavar="FILE.jsonl",
        help="with --shards: also append the stitched span trees, one JSON "
        "tree per line",
    )
    profile.add_argument(
        "--slow-round-ms", type=float, default=None, metavar="MS",
        help="with --shards: log a structured record for every frontier "
        "round slower than MS milliseconds",
    )
    profile.set_defaults(handler=_cmd_profile)

    workload = commands.add_parser(
        "workload",
        help="workload-scale execution of synthetic query logs "
        "(the Section 6.2 log study, batched)",
    )
    workload_commands = workload.add_subparsers(dest="workload_command", required=True)
    wrun = workload_commands.add_parser(
        "run",
        help="generate a query log and evaluate it through the batch executor",
    )
    wrun.add_argument("graph", help="fig2, fig3, a graph JSON file, or 'random'")
    wrun.add_argument(
        "--queries", type=int, default=100, help="log size (default 100)"
    )
    wrun.add_argument("--log-seed", type=int, default=0, help="query-log RNG seed")
    wrun.add_argument(
        "--labels",
        help="comma-separated query labels (default: the graph's labels; "
        "for 'random', the 8-letter benchmark alphabet)",
    )
    wrun.add_argument(
        "--nodes", type=int, default=150, help="'random' graph: node count"
    )
    wrun.add_argument(
        "--edges", type=int, default=1600, help="'random' graph: edge count"
    )
    wrun.add_argument(
        "--graph-seed", type=int, default=0, help="'random' graph: RNG seed"
    )
    wrun.add_argument(
        "--jobs", type=int, default=None, help="worker count (default: one per CPU)"
    )
    wrun.add_argument(
        "--fork",
        action="store_true",
        help="use a process pool instead of threads",
    )
    wrun.add_argument(
        "--per-source",
        action="store_true",
        help="disable the multi-source sweep (per-source BFS oracle)",
    )
    wrun.add_argument(
        "--baseline",
        action="store_true",
        help="also run the sequential seed path, verify identical answers, "
        "and report the speedup",
    )
    wrun.add_argument(
        "--stats",
        action="store_true",
        help="include aggregated engine counters/timers in the report",
    )
    wrun.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        help="trace every unique query and write one JSON record per line "
        "({query, source, seconds, trace}) to this file",
    )
    wrun.add_argument(
        "--slow-log",
        type=int,
        default=0,
        metavar="N",
        help="keep the N slowest queries (with full traces) and list them "
        "in the report digest",
    )
    wrun.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the merged latency histogram and engine counters in "
        "Prometheus text exposition format",
    )
    add_budget_flags(wrun)
    wrun.set_defaults(handler=_cmd_workload_run)

    serve = commands.add_parser(
        "serve",
        help="run the resident query service (JSON-lines TCP + HTTP "
        "/query /healthz /metrics; SIGTERM drains gracefully)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7687,
        help="listening port (0 picks a free port; the bound address is "
        "announced as a JSON line on stdout)",
    )
    serve.add_argument(
        "--graphs", nargs="*", metavar="NAME=FILE.json",
        help="extra graphs to preload next to the built-in fig2/fig3",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8,
        help="worker slots: queries executing at once (default 8)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=32,
        help="requests allowed to wait for a slot before fast rejection",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=2.0,
        help="seconds a queued request may wait before the typed "
        "'overloaded' rejection",
    )
    serve.add_argument(
        "--query-timeout", "--default-timeout", dest="query_timeout",
        type=float, default=30.0,
        help="default per-query wall-clock budget in seconds (requests may "
        "ask for less via their 'timeout' parameter, never more)",
    )
    serve.add_argument(
        "--max-request-bytes", type=int, default=1 << 20,
        help="request size limit (default 1 MiB)",
    )
    serve.add_argument(
        "--answer-cache", type=int, default=512,
        help="answer-cache entries (default 512)",
    )
    serve.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the Prometheus exposition here on graceful drain",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE.jsonl",
        help="enable the span tracer and stream server.request trees here",
    )
    serve.add_argument(
        "--data-dir", metavar="DIR",
        help="durable catalog directory (SQLite-backed; graphs survive "
        "restarts, uploads and mutations write through, SIGTERM drain "
        "flushes the journal)",
    )
    serve.add_argument(
        "--max-resident-edges", type=int, metavar="N",
        help="LRU budget for lazily-loaded label segments per stored graph "
        "(default: unbounded; only meaningful with --data-dir)",
    )
    serve.set_defaults(handler=_cmd_serve)

    store = commands.add_parser(
        "store",
        help="maintain a durable catalog directory offline "
        "(import/export/ls/compact)",
    )
    store_commands = store.add_subparsers(
        dest="store_command", required=True, metavar="COMMAND"
    )
    store_import = store_commands.add_parser(
        "import", help="snapshot a graph (file or fig2/fig3) into the store"
    )
    store_import.add_argument("--data-dir", required=True, metavar="DIR")
    store_import.add_argument("name", help="catalog name to store under")
    store_import.add_argument("file", help="graph JSON file, or fig2/fig3")
    store_export = store_commands.add_parser(
        "export", help="write a stored graph as JSON (snapshot ⊕ journal)"
    )
    store_export.add_argument("--data-dir", required=True, metavar="DIR")
    store_export.add_argument("name")
    store_export.add_argument("file", help="output path, or - for stdout")
    store_ls = store_commands.add_parser(
        "ls", help="list the store manifest (kind, counts, versions)"
    )
    store_ls.add_argument("--data-dir", required=True, metavar="DIR")
    store_ls.add_argument("--json", action="store_true")
    store_compact = store_commands.add_parser(
        "compact", help="fold the mutation journal back into the snapshot"
    )
    store_compact.add_argument("--data-dir", required=True, metavar="DIR")
    store_compact.add_argument("name", nargs="?", help="one graph (default: all)")
    store.set_defaults(handler=_cmd_store)

    shard_serve = commands.add_parser(
        "shard-serve",
        help="launch N shard workers (each a full 'repro serve'), "
        "distribute the given graphs across them, and run until SIGTERM",
    )
    shard_serve.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="number of shard worker processes (default 2)",
    )
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument(
        "--ports", metavar="P1,P2,...",
        help="comma-separated worker ports (default: OS-assigned); the "
        "bound cluster is announced as a JSON line on stdout",
    )
    shard_serve.add_argument(
        "--graphs", nargs="*", metavar="NAME=FILE.json",
        help="graphs to distribute across the fleet at startup",
    )
    shard_serve.add_argument(
        "--partition", default="hash", choices=("hash", "edge-cut"),
        help="partitioning strategy for the distributed graphs",
    )
    shard_serve.add_argument(
        "--replicated", action="store_true",
        help="upload full replicas to every shard instead of partitioning "
        "(read-throughput mode: whole queries route to one replica)",
    )
    shard_serve.add_argument(
        "--query-timeout", type=float, default=30.0,
        help="per-query wall-clock budget each worker enforces",
    )
    shard_serve.add_argument(
        "--metrics-out", metavar="FILE",
        help="periodically write the merged fleet metrics (Prometheus "
        "text exposition) to this file",
    )
    shard_serve.add_argument(
        "--metrics-interval", type=float, default=5.0, metavar="SECONDS",
        help="seconds between fleet metrics dumps (default 5)",
    )
    shard_serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between fleet health probes; a worker missing 3 "
        "probes (or whose process exited) is restarted on its announced "
        "port and re-seeded; 0 disables supervision (default 1)",
    )
    shard_serve.add_argument(
        "--max-restarts", type=int, default=3, metavar="N",
        help="restart budget per worker per 60s window; a worker "
        "crash-looping past it is left down (default 3)",
    )
    shard_serve.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="race a replicated read at the next rendezvous replica after "
        "this many seconds without an answer (default: no hedging)",
    )
    shard_serve.add_argument(
        "--allow-degraded", action="store_true",
        help="when every replica of a graph is down, serve replicated "
        "reads from the coordinator's retained copy marked "
        "'degraded: true' instead of failing (never cached)",
    )
    shard_serve.set_defaults(handler=_cmd_shard_serve)

    query = commands.add_parser(
        "query",
        help="send one query to a running server (repro serve) and print "
        "its answers",
    )
    target = query.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--connect", metavar="HOST:PORT",
        help="server address, e.g. 127.0.0.1:7687",
    )
    target.add_argument(
        "--shards", metavar="H:P,H:P,...",
        help="shard fleet addresses: the graph argument (fig2/fig3/file) "
        "is partitioned across the fleet and the query runs scatter-gather",
    )
    query.add_argument(
        "--partition", default="hash", choices=("hash", "edge-cut"),
        help="with --shards: the partitioning strategy (default hash)",
    )
    query.add_argument(
        "--replicated", action="store_true",
        help="with --shards: replicate instead of partition and route the "
        "whole query to one replica",
    )
    query.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="with --shards --replicated: race the read at the next "
        "rendezvous replica after this many seconds without an answer",
    )
    query.add_argument(
        "--allow-degraded", action="store_true",
        help="with --shards --replicated: if every replica is down, "
        "answer from the coordinator's local copy (marked degraded) "
        "instead of failing",
    )
    query.add_argument(
        "graph",
        help="cataloged graph name (with --connect), or a graph spec "
        "fig2/fig3/file.json to distribute (with --shards)",
    )
    query.add_argument("query", help="RPQ regex, or CRPQ if it contains ':-'")
    query.add_argument("--source", help="restrict the RPQ to one source node")
    query.add_argument(
        "--explain", action="store_true",
        help="ask the server for the plan instead of executing",
    )
    query.add_argument("--json", action="store_true", help="JSON output")
    add_budget_flags(query)
    query.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retry idempotent requests up to N times on lost connections "
        "or 'overloaded' rejections (exponential backoff with jitter)",
    )
    query.add_argument(
        "--trace-out", metavar="FILE.jsonl",
        help="with --shards: trace the scatter-gather and append the "
        "stitched cross-process span trees, one JSON tree per line",
    )
    query.add_argument(
        "--slow-round-ms", type=float, default=None, metavar="MS",
        help="with --shards: log a structured record for every frontier "
        "round slower than MS milliseconds",
    )
    query.set_defaults(handler=_cmd_query)

    cluster_stats = commands.add_parser(
        "cluster-stats",
        help="fetch every shard's metrics registry and print the exact "
        "merge (Prometheus text, or JSON with --json)",
    )
    cluster_stats.add_argument(
        "--shards", required=True, metavar="H:P,H:P,...",
        help="shard fleet addresses to aggregate",
    )
    cluster_stats.add_argument(
        "--json", action="store_true",
        help="JSON export (counters + bucketed histograms) instead of the "
        "Prometheus text exposition",
    )
    cluster_stats.add_argument(
        "--out", metavar="FILE",
        help="write the exposition to a file instead of stdout",
    )
    cluster_stats.set_defaults(handler=_cmd_cluster_stats)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.__main__
    raise SystemExit(main())
