"""The Glushkov (position) construction: regex -> epsilon-free NFA.

Given a regular expression with ``n`` symbol occurrences, the Glushkov
automaton has ``n + 1`` states and no epsilon transitions — this is the
construction the paper refers to in Section 6.2 ("given an RPQ R, an
equivalent NFA (without epsilon-transitions) can be constructed
efficiently").

A useful extra property exploited by :mod:`repro.automata.ambiguity` and the
query-log study (Section 6.2, [62]): the Glushkov automaton of a *one-
unambiguous* expression is deterministic, and more generally its ambiguity
reflects the ambiguity of the expression itself.

Wildcards ``!S`` are supported by instantiating them over a concrete finite
alphabet supplied by the caller (typically the edge labels of the graph
being queried plus the labels of the expression).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import QueryError
from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    SymbolType,
    Union,
    has_wildcard,
    nullable,
    symbols,
)
from repro.automata.nfa import NFA

#: The Glushkov initial state; positions are numbered from 1.
INITIAL_STATE = 0


@dataclass
class _Linearized:
    """Position bookkeeping: which concrete symbols each position matches."""

    matches: dict[int, frozenset[SymbolType]]

    def new_position(self, allowed: frozenset[SymbolType]) -> int:
        position = len(self.matches) + 1
        self.matches[position] = allowed
        return position


def _position_sets(
    regex: Regex, alphabet: frozenset[SymbolType], lin: _Linearized
) -> tuple[set[int], set[int], set[tuple[int, int]], bool]:
    """Compute (first, last, follow, nullable) with positions allocated in
    ``lin`` in left-to-right order."""
    if isinstance(regex, Empty):
        return set(), set(), set(), False
    if isinstance(regex, Epsilon):
        return set(), set(), set(), True
    if isinstance(regex, Symbol):
        allowed = frozenset({regex.symbol}) & alphabet
        position = lin.new_position(allowed)
        return {position}, {position}, set(), False
    if isinstance(regex, NotSymbols):
        allowed = alphabet - regex.excluded
        position = lin.new_position(allowed)
        return {position}, {position}, set(), False
    if isinstance(regex, Union):
        first: set[int] = set()
        last: set[int] = set()
        follow: set[tuple[int, int]] = set()
        is_nullable = False
        for part in regex.parts:
            p_first, p_last, p_follow, p_nullable = _position_sets(
                part, alphabet, lin
            )
            first |= p_first
            last |= p_last
            follow |= p_follow
            is_nullable = is_nullable or p_nullable
        return first, last, follow, is_nullable
    if isinstance(regex, Concat):
        first: set[int] = set()
        last: set[int] = set()
        follow: set[tuple[int, int]] = set()
        is_nullable = True
        for part in regex.parts:
            p_first, p_last, p_follow, p_nullable = _position_sets(
                part, alphabet, lin
            )
            follow |= p_follow
            follow |= {(l, f) for l in last for f in p_first}
            if is_nullable:
                first |= p_first
            if p_nullable:
                last |= p_last
            else:
                last = set(p_last)
            is_nullable = is_nullable and p_nullable
        return first, last, follow, is_nullable
    if isinstance(regex, Star):
        p_first, p_last, p_follow, _ = _position_sets(regex.inner, alphabet, lin)
        follow = set(p_follow)
        follow |= {(l, f) for l in p_last for f in p_first}
        return p_first, p_last, follow, True
    raise TypeError(f"not a regex node: {regex!r}")


def glushkov(regex: Regex, alphabet: Iterable[SymbolType]) -> NFA:
    """Build the Glushkov NFA of ``regex`` over the given finite alphabet.

    Transitions into a position ``q`` are labeled by every concrete symbol
    that position matches (a single label for ``Symbol``, the co-finite set
    instantiated over ``alphabet`` for ``NotSymbols``).
    """
    sigma = frozenset(alphabet)
    lin = _Linearized(matches={})
    first, last, follow, is_nullable = _position_sets(regex, sigma, lin)
    transitions: list[tuple[int, SymbolType, int]] = []
    for position in first:
        for symbol in lin.matches[position]:
            transitions.append((INITIAL_STATE, symbol, position))
    for source, target in follow:
        for symbol in lin.matches[target]:
            transitions.append((source, symbol, target))
    finals = set(last)
    if is_nullable:
        finals.add(INITIAL_STATE)
    states = range(len(lin.matches) + 1)
    return NFA(states, sigma, transitions, {INITIAL_STATE}, finals)


def compile_regex(
    regex: Regex, alphabet: Iterable[SymbolType] | None = None
) -> NFA:
    """Compile a regex to a trimmed epsilon-free NFA.

    When ``alphabet`` is omitted it defaults to the symbols occurring in the
    expression; expressions with wildcards then have no well-defined finite
    alphabet and are rejected (callers must supply the graph's label set, as
    Remark 11 intends).
    """
    if alphabet is None:
        if has_wildcard(regex):
            raise QueryError(
                "an expression with !S / _ wildcards needs an explicit alphabet"
            )
        alphabet = symbols(regex)
    return glushkov(regex, alphabet).trim()
