"""Finite automata over arbitrary hashable symbols (Section 6.2).

The paper's evaluation story is built on the product construction between a
graph and an NFA for the query; this package provides the automata side:

* :class:`~repro.automata.nfa.NFA` — epsilon-free nondeterministic automata;
* :func:`~repro.automata.glushkov.glushkov` — the efficient regex-to-NFA
  construction the paper cites ([100]), which never introduces epsilon
  transitions;
* :mod:`~repro.automata.dfa` — determinization, minimization, complement,
  products, equivalence;
* :mod:`~repro.automata.ambiguity` — the ambiguity test and unambiguous
  automata needed for *counting* matching paths (Section 6.2);
* :mod:`~repro.automata.enumerate` — word enumeration / cross-sections.

Symbols are arbitrary hashable objects, so the same machinery runs over
plain edge labels, over ``(label, variables)`` capture atoms (l-RPQs,
spanners), and over the node/edge atoms of dl-RPQs.
"""

from repro.automata.nfa import NFA
from repro.automata.glushkov import compile_regex, glushkov
from repro.automata.dfa import (
    DFA,
    complement,
    determinize,
    equivalent,
    intersect,
    minimize,
)
from repro.automata.ambiguity import is_ambiguous, unambiguous_nfa
from repro.automata.enumerate import enumerate_words, words_of_length

__all__ = [
    "NFA",
    "DFA",
    "glushkov",
    "compile_regex",
    "determinize",
    "minimize",
    "complement",
    "intersect",
    "equivalent",
    "is_ambiguous",
    "unambiguous_nfa",
    "enumerate_words",
    "words_of_length",
]
