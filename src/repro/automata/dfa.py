"""Deterministic finite automata: determinization, minimization, Boolean ops.

These are the "standard automata constructions such as union, intersection,
determinization, and complement" that Remark 11 keeps available by choosing
``!S`` wildcards over unrestricted ones.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.automata.nfa import NFA

StateType = Hashable
SymbolType = Hashable

#: The implicit rejecting sink state of a completed DFA.
SINK = "__sink__"


class DFA:
    """A complete deterministic automaton.

    ``delta`` is total: every (state, symbol) pair over the alphabet has
    exactly one successor (completion introduces :data:`SINK` on demand).
    """

    __slots__ = ("states", "alphabet", "initial", "finals", "_delta")

    def __init__(
        self,
        states: Iterable[StateType],
        alphabet: Iterable[SymbolType],
        delta: Mapping[tuple[StateType, SymbolType], StateType],
        initial: StateType,
        finals: Iterable[StateType],
    ):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.initial = initial
        self.finals = frozenset(finals)
        self._delta = dict(delta)
        if initial not in self.states:
            raise ValueError("initial state not in state set")
        if not self.finals <= self.states:
            raise ValueError("final states not in state set")
        for state in self.states:
            for symbol in self.alphabet:
                if (state, symbol) not in self._delta:
                    raise ValueError(
                        f"DFA transition function not total at {(state, symbol)!r}"
                    )

    @property
    def num_states(self) -> int:
        return len(self.states)

    def step(self, state: StateType, symbol: SymbolType) -> StateType:
        return self._delta[(state, symbol)]

    def accepts(self, word: Iterable[SymbolType]) -> bool:
        state = self.initial
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self._delta[(state, symbol)]
        return state in self.finals

    def to_nfa(self) -> NFA:
        """View the DFA as an NFA (dropping unreachable sink noise)."""
        return NFA(
            self.states,
            self.alphabet,
            [
                (source, symbol, target)
                for (source, symbol), target in self._delta.items()
            ],
            {self.initial},
            self.finals,
        ).trim()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DFA states={len(self.states)} alphabet={len(self.alphabet)}>"


def determinize(nfa: NFA, alphabet: Iterable[SymbolType] | None = None) -> DFA:
    """Subset construction.  ``alphabet`` defaults to the NFA's alphabet."""
    sigma = frozenset(alphabet) if alphabet is not None else nfa.alphabet
    initial = nfa.initial
    states = {initial}
    delta: dict[tuple[frozenset, SymbolType], frozenset] = {}
    frontier = [initial]
    while frontier:
        subset = frontier.pop()
        for symbol in sigma:
            successor = nfa.step(subset, symbol)
            delta[(subset, symbol)] = successor
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
    finals = {subset for subset in states if subset & nfa.finals}
    return DFA(states, sigma, delta, initial, finals)


def minimize(dfa: DFA) -> DFA:
    """Moore's partition-refinement minimization (on reachable states)."""
    reachable = {dfa.initial}
    frontier = [dfa.initial]
    while frontier:
        state = frontier.pop()
        for symbol in dfa.alphabet:
            successor = dfa.step(state, symbol)
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)

    symbols_ordered = sorted(dfa.alphabet, key=repr)
    # Initial partition: accepting vs rejecting.
    block_of = {
        state: (state in dfa.finals) for state in reachable
    }
    while True:
        signature = {
            state: (
                block_of[state],
                tuple(block_of[dfa.step(state, symbol)] for symbol in symbols_ordered),
            )
            for state in reachable
        }
        blocks = sorted({sig for sig in signature.values()}, key=repr)
        renumber = {sig: index for index, sig in enumerate(blocks)}
        new_block_of = {state: renumber[signature[state]] for state in reachable}
        if len(set(new_block_of.values())) == len(set(block_of.values())):
            block_of = new_block_of
            break
        block_of = new_block_of

    states = set(block_of.values())
    delta = {}
    for state in reachable:
        for symbol in dfa.alphabet:
            delta[(block_of[state], symbol)] = block_of[dfa.step(state, symbol)]
    finals = {block_of[state] for state in reachable if state in dfa.finals}
    return DFA(states, dfa.alphabet, delta, block_of[dfa.initial], finals)


def complement(dfa: DFA) -> DFA:
    """The complement automaton (over the same alphabet)."""
    return DFA(
        dfa.states,
        dfa.alphabet,
        {key: dfa.step(*key) for key in _all_keys(dfa)},
        dfa.initial,
        dfa.states - dfa.finals,
    )


def _all_keys(dfa: DFA):
    for state in dfa.states:
        for symbol in dfa.alphabet:
            yield (state, symbol)


def _product(left: DFA, right: DFA, final_rule) -> DFA:
    if left.alphabet != right.alphabet:
        raise ValueError("product requires identical alphabets")
    initial = (left.initial, right.initial)
    states = {initial}
    delta = {}
    frontier = [initial]
    while frontier:
        pair = frontier.pop()
        for symbol in left.alphabet:
            successor = (left.step(pair[0], symbol), right.step(pair[1], symbol))
            delta[(pair, symbol)] = successor
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
    finals = {
        pair
        for pair in states
        if final_rule(pair[0] in left.finals, pair[1] in right.finals)
    }
    return DFA(states, left.alphabet, delta, initial, finals)


def intersect(left: DFA, right: DFA) -> DFA:
    """The product automaton for the intersection of two languages."""
    return _product(left, right, lambda a, b: a and b)


def union_dfa(left: DFA, right: DFA) -> DFA:
    """The product automaton for the union of two languages."""
    return _product(left, right, lambda a, b: a or b)


def difference(left: DFA, right: DFA) -> DFA:
    """The product automaton for ``L(left) - L(right)``."""
    return _product(left, right, lambda a, b: a and not b)


def is_empty_dfa(dfa: DFA) -> bool:
    """Whether the DFA accepts nothing."""
    return dfa.to_nfa().is_empty()


def equivalent(left: DFA, right: DFA) -> bool:
    """Language equivalence via symmetric difference emptiness."""
    return is_empty_dfa(difference(left, right)) and is_empty_dfa(
        difference(right, left)
    )
