"""Epsilon-free nondeterministic finite automata.

We follow the paper's convention ``(Q, Sigma, delta, q0, F)`` but allow a
*set* of initial states — the product construction of Section 6.2 turns
graph nodes into initial states, and there may be many.  An NFA with a
single initial state is of course a special case.

States and symbols are arbitrary hashable objects; every engine in the
library that needs fresh state names uses :meth:`NFA.renumbered`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping

StateType = Hashable
SymbolType = Hashable


class NFA:
    """An immutable epsilon-free NFA.

    ``transitions`` maps ``(state, symbol)`` pairs to sets of successor
    states.  Missing entries mean "no transition"; the automaton is not
    required to be complete.
    """

    __slots__ = ("states", "alphabet", "initial", "finals", "_delta")

    def __init__(
        self,
        states: Iterable[StateType],
        alphabet: Iterable[SymbolType],
        transitions: Mapping[tuple[StateType, SymbolType], Iterable[StateType]]
        | Iterable[tuple[StateType, SymbolType, StateType]],
        initial: Iterable[StateType],
        finals: Iterable[StateType],
    ):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.initial = frozenset(initial)
        self.finals = frozenset(finals)
        delta: dict[tuple[StateType, SymbolType], frozenset[StateType]] = {}
        if isinstance(transitions, Mapping):
            for key, successors in transitions.items():
                delta[key] = frozenset(successors)
        else:
            staged: dict[tuple[StateType, SymbolType], set[StateType]] = {}
            for source, symbol, target in transitions:
                staged.setdefault((source, symbol), set()).add(target)
            delta = {key: frozenset(value) for key, value in staged.items()}
        self._delta = delta
        undefined = (self.initial | self.finals) - self.states
        if undefined:
            raise ValueError(f"initial/final states not in state set: {undefined!r}")
        for (source, symbol), targets in delta.items():
            if source not in self.states or not targets <= self.states:
                raise ValueError(f"transition on unknown state: {(source, symbol)!r}")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(targets) for targets in self._delta.values())

    def successors(self, state: StateType, symbol: SymbolType) -> frozenset[StateType]:
        """``delta(state, symbol)`` as a (possibly empty) set."""
        return self._delta.get((state, symbol), frozenset())

    def transitions(self) -> Iterator[tuple[StateType, SymbolType, StateType]]:
        """Iterate over all transition triples."""
        for (source, symbol), targets in self._delta.items():
            for target in targets:
                yield (source, symbol, target)

    def out_transitions(
        self, state: StateType
    ) -> Iterator[tuple[SymbolType, StateType]]:
        """Iterate over ``(symbol, target)`` pairs leaving ``state``."""
        for (source, symbol), targets in self._delta.items():
            if source == state:
                for target in targets:
                    yield (symbol, target)

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def step(
        self, states: frozenset[StateType], symbol: SymbolType
    ) -> frozenset[StateType]:
        """The set of states reachable from ``states`` by one ``symbol``."""
        result: set[StateType] = set()
        for state in states:
            result.update(self._delta.get((state, symbol), ()))
        return frozenset(result)

    def accepts(self, word: Iterable[SymbolType]) -> bool:
        """Standard subset-simulation membership test."""
        current = self.initial
        for symbol in word:
            if not current:
                return False
            current = self.step(current, symbol)
        return bool(current & self.finals)

    # ------------------------------------------------------------------
    # trimming
    # ------------------------------------------------------------------
    def reachable_states(self) -> frozenset[StateType]:
        """States reachable from some initial state."""
        seen = set(self.initial)
        frontier = list(self.initial)
        forward: dict[StateType, set[StateType]] = {}
        for source, _symbol, target in self.transitions():
            forward.setdefault(source, set()).add(target)
        while frontier:
            state = frontier.pop()
            for target in forward.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset[StateType]:
        """States from which some final state is reachable."""
        seen = set(self.finals)
        frontier = list(self.finals)
        backward: dict[StateType, set[StateType]] = {}
        for source, _symbol, target in self.transitions():
            backward.setdefault(target, set()).add(source)
        while frontier:
            state = frontier.pop()
            for source in backward.get(state, ()):
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return frozenset(seen)

    def trim(self) -> "NFA":
        """Restrict to useful states (reachable and co-reachable)."""
        useful = self.reachable_states() & self.coreachable_states()
        return NFA(
            useful,
            self.alphabet,
            {
                (source, symbol): targets & useful
                for (source, symbol), targets in self._delta.items()
                if source in useful and targets & useful
            },
            self.initial & useful,
            self.finals & useful,
        )

    def is_empty(self) -> bool:
        """Whether ``L(A)`` is empty."""
        return not (self.reachable_states() & self.finals)

    def is_infinite(self) -> bool:
        """Whether ``L(A)`` is infinite (a useful cycle exists).

        Used by engines to detect the Section 6.3 situation where the set of
        matching paths is infinite.
        """
        trimmed = self.trim()
        # DFS cycle detection on useful states.
        color: dict[StateType, int] = {}
        forward: dict[StateType, set[StateType]] = {}
        for source, _symbol, target in trimmed.transitions():
            forward.setdefault(source, set()).add(target)

        def has_cycle(state: StateType) -> bool:
            color[state] = 1
            for target in forward.get(state, ()):
                mark = color.get(target, 0)
                if mark == 1:
                    return True
                if mark == 0 and has_cycle(target):
                    return True
            color[state] = 2
            return False

        return any(
            color.get(state, 0) == 0 and has_cycle(state) for state in trimmed.states
        )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "NFA":
        """The mirror automaton accepting reversed words."""
        return NFA(
            self.states,
            self.alphabet,
            [(target, symbol, source) for source, symbol, target in self.transitions()],
            self.finals,
            self.initial,
        )

    def renumbered(self) -> "NFA":
        """An isomorphic NFA with states 0..n-1 (stable, deterministic)."""
        ordering = sorted(self.states, key=repr)
        index = {state: number for number, state in enumerate(ordering)}
        return NFA(
            range(len(ordering)),
            self.alphabet,
            [
                (index[source], symbol, index[target])
                for source, symbol, target in self.transitions()
            ],
            [index[state] for state in self.initial],
            [index[state] for state in self.finals],
        )

    def map_symbols(self, mapping) -> "NFA":
        """Relabel every transition symbol through ``mapping``.

        Used to erase capture-variable annotations from l-RPQ automata
        (projecting ``(label, vars)`` atoms back to plain labels).
        """
        return NFA(
            self.states,
            {mapping(symbol) for symbol in self.alphabet},
            [
                (source, mapping(symbol), target)
                for source, symbol, target in self.transitions()
            ],
            self.initial,
            self.finals,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NFA states={len(self.states)} alphabet={len(self.alphabet)} "
            f"transitions={self.num_transitions} initial={len(self.initial)} "
            f"finals={len(self.finals)}>"
        )
