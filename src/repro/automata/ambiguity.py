"""Ambiguity analysis of NFAs (Section 6.2).

"If we want to count the number of matching paths, it is important that the
automaton is unambiguous; that is, it has at most one accepting run per
word."  This module provides the classical polynomial-time ambiguity test
(via the self-product) and a constructor for an unambiguous automaton:
the Glushkov automaton when it already is unambiguous, otherwise the
determinized automaton (a DFA is trivially unambiguous).

The query-log study of [62] — simulated in :mod:`repro.workloads.querylog`
— found that real-life RPQs never needed an unambiguous automaton larger
than the expression; :func:`unambiguous_nfa` records which construction was
used so the experiment can measure exactly that.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.dfa import determinize
from repro.automata.glushkov import glushkov
from repro.automata.nfa import NFA
from repro.regex.ast import Regex, SymbolType


def is_ambiguous(nfa: NFA) -> bool:
    """Whether some word has two distinct accepting runs.

    Standard criterion: trim the automaton, then build the reachable part of
    the self-product starting from all pairs of initial states; the automaton
    is ambiguous iff a *useful* product state ``(p, q)`` with ``p != q``
    exists (useful: reachable, and co-reachable from a pair of final states).
    """
    trimmed = nfa.trim()
    if not trimmed.initial:
        return False
    by_source: dict = {}
    for source, symbol, target in trimmed.transitions():
        by_source.setdefault((source, symbol), []).append(target)
    symbols_by_source: dict = {}
    for source, symbol, _target in trimmed.transitions():
        symbols_by_source.setdefault(source, set()).add(symbol)

    start_pairs = {(p, q) for p in trimmed.initial for q in trimmed.initial}
    seen = set(start_pairs)
    frontier = list(start_pairs)
    edges: dict[tuple, set[tuple]] = {}
    while frontier:
        p, q = frontier.pop()
        for symbol in symbols_by_source.get(p, ()):  # symbols leaving p
            for p2 in by_source.get((p, symbol), ()):
                for q2 in by_source.get((q, symbol), ()):
                    pair = (p2, q2)
                    edges.setdefault((p, q), set()).add(pair)
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)

    final_pairs = {
        pair for pair in seen if pair[0] in trimmed.finals and pair[1] in trimmed.finals
    }
    # Co-reachability within the product.
    backward: dict[tuple, set[tuple]] = {}
    for source_pair, targets in edges.items():
        for target_pair in targets:
            backward.setdefault(target_pair, set()).add(source_pair)
    useful = set(final_pairs)
    frontier = list(final_pairs)
    while frontier:
        pair = frontier.pop()
        for source_pair in backward.get(pair, ()):
            if source_pair not in useful:
                useful.add(source_pair)
                frontier.append(source_pair)

    return any(p != q for (p, q) in useful)


def unambiguous_nfa(
    regex: Regex, alphabet: Iterable[SymbolType]
) -> tuple[NFA, str]:
    """An unambiguous NFA for ``regex`` plus the construction used.

    Returns ``(nfa, how)`` where ``how`` is ``"glushkov"`` when the position
    automaton was already unambiguous and ``"determinized"`` otherwise.
    """
    position_automaton = glushkov(regex, alphabet).trim()
    if not is_ambiguous(position_automaton):
        return position_automaton, "glushkov"
    deterministic = determinize(position_automaton, position_automaton.alphabet)
    return deterministic.to_nfa(), "determinized"


def ambiguity_degree_bounded(nfa: NFA, word) -> int:
    """The number of distinct accepting runs of ``nfa`` on ``word``.

    A dynamic program over run prefixes; exact (not just a bound), used by
    tests to validate :func:`is_ambiguous` and path counting.
    """
    counts = {state: 1 for state in nfa.initial}
    for symbol in word:
        next_counts: dict = {}
        for state, count in counts.items():
            for target in nfa.successors(state, symbol):
                next_counts[target] = next_counts.get(target, 0) + count
        counts = next_counts
    return sum(count for state, count in counts.items() if state in nfa.finals)
