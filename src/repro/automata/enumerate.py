"""Enumerating the words of a regular language.

The paper connects path enumeration to "enumerating words in regular
languages [1, 4]".  We provide cross-sections (all words of one length) and
a length-lexicographic enumerator with bounded delay per word, plus counting
per length (which for unambiguous automata equals the number of accepting
runs — the bridge to path counting in Section 6.2).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.automata.nfa import NFA

SymbolType = Hashable


def words_of_length(nfa: NFA, length: int) -> Iterator[tuple[SymbolType, ...]]:
    """Yield each word of exactly ``length`` in ``L(nfa)`` once.

    Works on the subset-construction lattice so duplicates never appear,
    without determinizing the whole automaton up front.
    """
    trimmed = nfa.trim()
    if not trimmed.initial:
        return
    symbols_ordered = sorted(trimmed.alphabet, key=repr)

    def extend(
        subset: frozenset, remaining: int, prefix: tuple[SymbolType, ...]
    ) -> Iterator[tuple[SymbolType, ...]]:
        if remaining == 0:
            if subset & trimmed.finals:
                yield prefix
            return
        for symbol in symbols_ordered:
            successor = trimmed.step(subset, symbol)
            if successor:
                yield from extend(successor, remaining - 1, prefix + (symbol,))

    yield from extend(trimmed.initial, length, ())


def enumerate_words(
    nfa: NFA, max_length: int | None = None, limit: int | None = None
) -> Iterator[tuple[SymbolType, ...]]:
    """Yield words of ``L(nfa)`` in length-lexicographic order.

    Stops after ``limit`` words or length ``max_length`` (whichever comes
    first); at least one bound must be given for infinite languages —
    callers can check :meth:`NFA.is_infinite` first.
    """
    if max_length is None and limit is None and nfa.is_infinite():
        raise ValueError("unbounded enumeration of an infinite language")
    produced = 0
    length = 0
    consecutive_empty = 0
    while max_length is None or length <= max_length:
        emitted_at_length = False
        for word in words_of_length(nfa, length):
            yield word
            emitted_at_length = True
            produced += 1
            if limit is not None and produced >= limit:
                return
        length += 1
        consecutive_empty = 0 if emitted_at_length else consecutive_empty + 1
        if max_length is None and consecutive_empty > nfa.num_states:
            # Pumping bound: a word of length n >= |Q| pumps down to one at
            # most |Q| shorter, so |Q|+1 consecutive empty lengths imply the
            # language has no longer words.  Safe termination for finite
            # languages enumerated without an explicit max_length.
            return


def count_words_of_length(nfa: NFA, length: int) -> int:
    """The number of distinct words of the given length in ``L(nfa)``.

    Computed by dynamic programming over determinization subsets, so it is
    exact even for ambiguous automata.
    """
    trimmed = nfa.trim()
    if not trimmed.initial:
        return 0
    counts: dict[frozenset, int] = {trimmed.initial: 1}
    for _ in range(length):
        next_counts: dict[frozenset, int] = {}
        for subset, count in counts.items():
            for symbol in trimmed.alphabet:
                successor = trimmed.step(subset, symbol)
                if successor:
                    next_counts[successor] = next_counts.get(successor, 0) + count
        counts = next_counts
    return sum(
        count for subset, count in counts.items() if subset & trimmed.finals
    )
