"""The configuration graph of a dl-RPQ over a property graph.

This is our implementation of the paper's register-automaton approach to
data filters (Section 6.4, [69, 78]), extended to treat nodes and edges
symmetrically as dl-RPQs require.

A *configuration* is ``(position, state, nu)`` where

* ``position`` is the last object of the path built so far (``None`` at the
  very start, when the path is empty),
* ``state`` is an automaton state of the Glushkov NFA over the dl-atoms,
* ``nu`` is the current value assignment of the data variables.

An atom transition either **stays** on the current object (the collapsing
concatenation ``p . path(o) = p`` when ``o`` is already the last object —
this is how ``(a^z)(date < x)(x := date)`` tests one node three times) or
**appends** a new object, which must be incident to the previous one:

* appending a node after an edge ``e`` requires the node to be ``tgt(e)``;
* appending an edge after a node ``n`` requires ``src(edge) = n``;
* from the empty path, the first object is either the source node itself or
  an edge leaving it (so that ``src(p)`` is the requested source).

Because property values come from the graph, the reachable ``nu`` are
finitely many and the configuration graph is finite even when the set of
matching paths is infinite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.glushkov import glushkov
from repro.automata.nfa import NFA
from repro.datatests.ast import DLAtom, Kind
from repro.graph.bindings import ValueAssignment
from repro.graph.edge_labeled import ObjectId
from repro.graph.property_graph import PropertyGraph
from repro.regex.ast import Regex, symbols

Config = tuple  # (position | None, state, ValueAssignment)


@dataclass(frozen=True, slots=True)
class Effect:
    """What a configuration transition does to the path and the lists."""

    append: "ObjectId | None"  # object appended to the path (None = stay)
    capture: object = None  # list variable receiving the matched object
    matched: "ObjectId | None" = None  # the object the atom matched

    @property
    def is_progress(self) -> bool:
        """Whether the transition changes the output (path or mu)."""
        return self.append is not None or self.capture is not None


@dataclass
class ConfigGraph:
    """A materialized configuration graph rooted at one source node."""

    graph: PropertyGraph
    source: ObjectId
    starts: list = field(default_factory=list)
    configs: set = field(default_factory=set)
    # config -> list of (Effect, config')
    edges: dict = field(default_factory=dict)
    accepting: set = field(default_factory=set)
    #: accepting configs reachable without a single append (the empty path);
    #: excluded from sigma results because path() has no endpoints.
    finals_by_target: dict = field(default_factory=dict)

    def successors(self, config: Config):
        return self.edges.get(config, ())


def compile_dlrpq(regex: Regex) -> NFA:
    """Glushkov NFA over the dl-atoms of the expression."""
    alphabet = {atom for atom in symbols(regex) if isinstance(atom, DLAtom)}
    if len(alphabet) != len(symbols(regex)):
        raise TypeError("dl-RPQ expressions must use DLAtom symbols only")
    return glushkov(regex, alphabet).trim()


def _position_target(graph: PropertyGraph, position) -> ObjectId:
    """tgt(p) for a path ending at ``position``."""
    if graph.has_edge(position):
        return graph.tgt(position)
    return position


def build_config_graph(
    regex: "Regex | NFA",
    graph: PropertyGraph,
    source: ObjectId,
) -> ConfigGraph:
    """Explore all configurations reachable from ``(None, q0, nu0)``.

    The returned graph's ``accepting`` set contains every configuration with
    an accepting automaton state and a non-empty path position;
    ``finals_by_target`` groups them by the path target they witness.
    """
    nfa = regex if isinstance(regex, NFA) else compile_dlrpq(regex)
    by_state: dict = {}
    for state_from, atom, state_to in nfa.transitions():
        by_state.setdefault(state_from, []).append((atom, state_to))

    # Configurations carry single automaton states (not subsets) so that
    # captures stay faithful; seed one start configuration per initial state.
    seeds = [(None, state, ValueAssignment.empty()) for state in nfa.initial]
    result = ConfigGraph(graph=graph, source=source, starts=list(seeds))
    frontier = list(seeds)
    result.configs.update(seeds)

    def candidate_moves(position):
        """(object, append?) pairs reachable from the current position."""
        moves = []
        if position is None:
            if graph.has_node(source):
                moves.append((source, True))
                for edge in graph.out_edges(source):
                    moves.append((edge, True))
        elif graph.has_edge(position):
            moves.append((position, False))  # stay on the edge
            moves.append((graph.tgt(position), True))
        else:
            moves.append((position, False))  # stay on the node
            for edge in graph.out_edges(position):
                moves.append((edge, True))
        return moves

    while frontier:
        config = frontier.pop()
        position, state, nu = config
        moves = candidate_moves(position)
        for atom, next_state in by_state.get(state, ()):
            for obj, is_append in moves:
                if atom.kind is Kind.NODE and not graph.has_node(obj):
                    continue
                if atom.kind is Kind.EDGE and not graph.has_edge(obj):
                    continue
                ok, next_nu, capture = atom.matches(graph, obj, nu)
                if not ok:
                    continue
                next_config: Config = (obj, next_state, next_nu)
                effect = Effect(
                    append=obj if is_append else None,
                    capture=capture,
                    matched=obj,
                )
                result.edges.setdefault(config, []).append((effect, next_config))
                if next_config not in result.configs:
                    result.configs.add(next_config)
                    frontier.append(next_config)

    for config in result.configs:
        position, state, _nu = config
        if position is not None and state in nfa.finals:
            result.accepting.add(config)
            target = _position_target(graph, position)
            result.finals_by_target.setdefault(target, set()).add(config)
    return result


def reachable_targets(config_graph: ConfigGraph) -> set[ObjectId]:
    """All nodes ``v`` such that some non-empty matching path from the
    source ends at ``v`` — the pair semantics used by dl-CRPQ joins."""
    return set(config_graph.finals_by_target)
