"""Atoms of dl-RPQs (Section 3.2.1).

A regular expression with data tests and list variables is built from atoms
of six shapes, three per object kind::

    (a)   (a^z)   (et)        — node atoms
    [a]   [a^z]   [et]        — edge atoms

where ``et`` follows the ETest grammar::

    ETest := x := pname | pname op c | pname op x     op ∈ {=, ≠, <, >}

All atoms are plain hashable dataclasses used as ``Symbol`` payloads in the
generic regex AST, so the whole regex/automata machinery applies unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph
from repro.graph.bindings import ValueAssignment
from repro.regex.ast import Regex, Symbol


class Kind(enum.Enum):
    """Whether an atom matches a node ``(...)`` or an edge ``[...]``."""

    NODE = "node"
    EDGE = "edge"


@dataclass(frozen=True, slots=True)
class LabelMatch:
    """Match the current object's label; ``label=None`` is the wildcard.

    ``capture`` (a list-variable name or ``None``) makes this the ``a^z``
    form: the matched object is appended to the variable's list.
    """

    label: object = None
    capture: object = None

    def __repr__(self) -> str:
        text = "_" if self.label is None else str(self.label)
        if self.capture is not None:
            text += f"^{self.capture}"
        return text


@dataclass(frozen=True, slots=True)
class AssignTest:
    """``x := pname`` — store the object's property value in ``x``.

    Fails (no transition) when the property is undefined on the object,
    since there is no value to store.
    """

    var: object
    prop: object

    def __repr__(self) -> str:
        return f"{self.var} := {self.prop}"


#: The comparison operators of the ETest grammar.
OPERATORS = ("=", "!=", "<", ">")


def _compare(left, op: str, right) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
    except TypeError:
        return False
    raise ValueError(f"unknown operator {op!r}")


@dataclass(frozen=True, slots=True)
class ConstTest:
    """``pname op c`` — compare the object's property against a constant."""

    prop: object
    op: str
    value: object

    def __repr__(self) -> str:
        return f"{self.prop} {self.op} {self.value!r}"


@dataclass(frozen=True, slots=True)
class VarTest:
    """``pname op x`` — compare the object's property against a stored value."""

    prop: object
    op: str
    var: object

    def __repr__(self) -> str:
        return f"{self.prop} {self.op} {self.var}"


Action = object  # LabelMatch | AssignTest | ConstTest | VarTest


@dataclass(frozen=True, slots=True)
class DLAtom:
    """One atom: an object-kind plus an action."""

    kind: Kind
    action: Action

    def __repr__(self) -> str:
        if self.kind is Kind.NODE:
            return f"({self.action!r})"
        return f"[{self.action!r}]"

    def matches(
        self, graph: PropertyGraph, obj, nu: ValueAssignment
    ) -> "tuple[bool, ValueAssignment, object]":
        """Test the atom against an object.

        Returns ``(ok, nu', capture_var)``: whether the action succeeds, the
        (possibly updated) value assignment, and the list variable to append
        the object to (or ``None``).
        """
        action = self.action
        if isinstance(action, LabelMatch):
            if action.label is not None and graph.object_label(obj) != action.label:
                return (False, nu, None)
            return (True, nu, action.capture)
        if isinstance(action, AssignTest):
            if not graph.has_property(obj, action.prop):
                return (False, nu, None)
            return (True, nu.set(action.var, graph.get_property(obj, action.prop)), None)
        if isinstance(action, ConstTest):
            if not graph.has_property(obj, action.prop):
                return (False, nu, None)
            ok = _compare(graph.get_property(obj, action.prop), action.op, action.value)
            return (ok, nu, None)
        if isinstance(action, VarTest):
            if action.var not in nu or not graph.has_property(obj, action.prop):
                return (False, nu, None)
            ok = _compare(
                graph.get_property(obj, action.prop), action.op, nu[action.var]
            )
            return (ok, nu, None)
        raise TypeError(f"unknown atom action {action!r}")


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def node_atom(action: Action) -> Regex:
    """A node atom ``( action )`` as a regex symbol."""
    return Symbol(DLAtom(Kind.NODE, action))


def edge_atom(action: Action) -> Regex:
    """An edge atom ``[ action ]`` as a regex symbol."""
    return Symbol(DLAtom(Kind.EDGE, action))


def dl_list_variables(regex: Regex) -> frozenset:
    """All list variables captured anywhere in a dl-RPQ."""
    from repro.regex.ast import symbols

    found = set()
    for payload in symbols(regex):
        if isinstance(payload, DLAtom) and isinstance(payload.action, LabelMatch):
            if payload.action.capture is not None:
                found.add(payload.action.capture)
    return frozenset(found)


def dl_data_variables(regex: Regex) -> frozenset:
    """All data variables (assigned or compared) in a dl-RPQ."""
    from repro.regex.ast import symbols

    found = set()
    for payload in symbols(regex):
        if isinstance(payload, DLAtom):
            if isinstance(payload.action, AssignTest):
                found.add(payload.action.var)
            elif isinstance(payload.action, VarTest):
                found.add(payload.action.var)
    return frozenset(found)
