"""Surface syntax for dl-RPQs (the paper's notation, ASCII-adapted).

Example 21's expressions parse verbatim (modulo ``^`` instead of
superscripts)::

    (a^z)(x := date) ( [_](a^z)(date > x)(x := date) )*
    [a^z][x := date] ( (_)[a^z][date > x][x := date] )*

Atom grammar (inside ``(...)`` for nodes, ``[...]`` for edges)::

    content :=  '_' | ''                      -- wildcard (any label)
             |  LABEL ('^' VAR)?              -- label match, optional capture
             |  '_' '^' VAR                   -- wildcard with capture
             |  VAR ':=' PNAME                -- assignment test
             |  PNAME OP value                -- comparison test

    OP      :=  '=' | '!=' | '≠' | '<' | '>'
    value   :=  NUMBER | 'quoted string' | VAR   -- bare identifier = data var

The regex operators around atoms are the usual ones: juxtaposition or ``.``
for concatenation, ``+`` for union (postfix ``+`` for Kleene plus, same
lookahead rule as the RPQ parser), ``*``, ``?``, ``{n,m}``.
"""

from __future__ import annotations

import re as _stdlib_re

from repro.errors import ParseError
from repro.datatests.ast import (
    AssignTest,
    ConstTest,
    DLAtom,
    Kind,
    LabelMatch,
    VarTest,
)
from repro.regex.ast import (
    Concat,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    optional,
    plus,
    repeat,
    star,
    union,
)

_TOKEN_PATTERN = _stdlib_re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NODEATOM>\(\s*[^()\[\]]*?\s*\))
  | (?P<EDGEATOM>\[\s*[^()\[\]]*?\s*\])
  | (?P<REPEAT>\{\s*\d+\s*(?:,\s*\d*\s*)?\})
  | (?P<OP>[().+|*?])
""",
    _stdlib_re.VERBOSE,
)

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_LABEL_CAPTURE = _stdlib_re.compile(
    rf"^(?P<label>{_IDENT})?\s*(?:\^\s*(?P<var>{_IDENT}))?$"
)
_ASSIGN = _stdlib_re.compile(rf"^(?P<var>{_IDENT})\s*:=\s*(?P<prop>{_IDENT})$")
_COMPARE = _stdlib_re.compile(
    rf"^(?P<prop>{_IDENT})\s*(?P<op>!=|≠|=|<|>)\s*(?P<value>.+)$"
)
_NUMBER = _stdlib_re.compile(r"^-?\d+(\.\d+)?$")


def _parse_value(text: str):
    """A comparison RHS: number / quoted constant / bare data variable."""
    text = text.strip()
    if _NUMBER.match(text):
        return ("const", float(text) if "." in text else int(text))
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return ("const", text[1:-1])
    if _stdlib_re.match(rf"^{_IDENT}$", text):
        return ("var", text)
    raise ParseError(f"cannot parse comparison value {text!r}")


def _parse_atom_content(content: str, kind: Kind) -> DLAtom:
    content = content.strip()
    if content in ("", "_"):
        return DLAtom(kind, LabelMatch(None, None))
    match = _ASSIGN.match(content)
    if match:
        return DLAtom(kind, AssignTest(match.group("var"), match.group("prop")))
    match = _COMPARE.match(content)
    if match:
        op = match.group("op")
        if op == "≠":
            op = "!="
        value_kind, value = _parse_value(match.group("value"))
        if value_kind == "const":
            return DLAtom(kind, ConstTest(match.group("prop"), op, value))
        return DLAtom(kind, VarTest(match.group("prop"), op, value))
    match = _LABEL_CAPTURE.match(content)
    if match and (match.group("label") or match.group("var")):
        label = match.group("label")
        if label == "_":
            label = None
        return DLAtom(kind, LabelMatch(label, match.group("var")))
    raise ParseError(f"cannot parse atom content {content!r}")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at {position} in dl-RPQ"
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind != "WS":
            tokens.append((kind, value))
    return tokens


class _DLParser:
    """Recursive descent mirroring the RPQ parser, with atom tokens.

    A ``(`` only opens a *group* when it cannot be read as a node atom —
    the tokenizer prefers atoms, so grouping requires the group to contain
    operators, which is always the case in practice (``((a))`` is therefore
    read as a group around the node atom ``(a)``).
    """

    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self):
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of dl-RPQ")
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        token = self._peek()
        if token is None or token[1] != value:
            found = token[1] if token else "end of input"
            raise ParseError(f"expected {value!r}, found {found!r}")
        self._index += 1

    def _atom_follows(self) -> bool:
        token = self._peek()
        return token is not None and (
            token[0] in ("NODEATOM", "EDGEATOM") or token[1] == "("
        )

    def parse(self) -> Regex:
        result = self.union()
        token = self._peek()
        if token is not None:
            raise ParseError(f"trailing input starting at {token[1]!r}")
        return result

    def union(self) -> Regex:
        parts = [self.concatenation()]
        while True:
            token = self._peek()
            if token is None or token[1] not in ("+", "|"):
                break
            self._index += 1
            parts.append(self.concatenation())
        return union(*parts)

    def concatenation(self) -> Regex:
        parts = [self.postfix()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token[1] == ".":
                self._index += 1
                parts.append(self.postfix())
            elif self._atom_follows():
                parts.append(self.postfix())
            else:
                break
        return concat(*parts)

    def postfix(self) -> Regex:
        result = self.atom()
        while True:
            token = self._peek()
            if token is None:
                break
            kind, value = token
            if value == "*":
                self._index += 1
                result = star(result)
            elif value == "?":
                self._index += 1
                result = optional(result)
            elif value == "+" and not self._atom_follows_after_plus():
                self._index += 1
                result = plus(result)
            elif kind == "REPEAT":
                self._index += 1
                result = self._apply_repeat(result, value)
            else:
                break
        return result

    def _atom_follows_after_plus(self) -> bool:
        if self._index + 1 < len(self._tokens):
            kind, value = self._tokens[self._index + 1]
            return kind in ("NODEATOM", "EDGEATOM") or value == "("
        return False

    def _apply_repeat(self, inner: Regex, text: str) -> Regex:
        body = text.strip("{} \t")
        if "," in body:
            low_text, high_text = body.split(",", 1)
            low = int(low_text)
            high = int(high_text) if high_text.strip() else None
        else:
            low = high = int(body)
        try:
            return repeat(inner, low, high)
        except ValueError as error:
            raise ParseError(str(error)) from None

    def atom(self) -> Regex:
        kind, value = self._next()
        if kind == "NODEATOM":
            return Symbol(_parse_atom_content(value[1:-1], Kind.NODE))
        if kind == "EDGEATOM":
            return Symbol(_parse_atom_content(value[1:-1], Kind.EDGE))
        if value == "(":
            inner = self.union()
            self._expect(")")
            return inner
        raise ParseError(f"unexpected token {value!r} in dl-RPQ")


def parse_dlrpq(text: str) -> Regex:
    """Parse a dl-RPQ from the paper's surface syntax (see module docstring)."""
    return _DLParser(_tokenize(text)).parse()
