"""Evaluating dl-RPQs (Section 3.2.1) under path modes.

The engine enumerates paths through the configuration graph of
:mod:`repro.datatests.register`.  Each accepted run determines a result
``(p, mu)``: append effects build the path, capture effects build the lists.

Finiteness is subtler than for plain RPQs because *stay* transitions can
capture (``(a^z)(a^z)`` appends the same node to ``z`` twice without moving)
— so even a fixed finite path can carry infinitely many ``mu``.  Before
enumerating, the engine analyzes the strongly connected components of the
useful configuration graph:

* mode ``all`` is infinite iff some useful cycle contains a *progress* edge
  (append or capture);
* the restricted modes bound the number of appends, so they are infinite
  iff some useful cycle consists of stay edges only and captures — those
  cycles pump ``mu`` without lengthening the path.

In the infinite cases an :class:`InfiniteResultError` is raised unless the
caller passes a ``limit``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import EvaluationError, InfiniteResultError
from repro.datatests.parser import parse_dlrpq
from repro.datatests.register import ConfigGraph, build_config_graph, compile_dlrpq
from repro.graph.bindings import ListBinding
from repro.graph.edge_labeled import ObjectId
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.listvars.lrpq import PathBinding
from repro.regex.ast import Regex
from repro.rpq.path_modes import PATH_MODES


def _as_regex(query) -> Regex:
    if isinstance(query, str):
        return parse_dlrpq(query)
    return query


def _coreachable(cg: ConfigGraph, goal: set) -> set:
    """Configs from which some goal configuration is reachable."""
    backward: dict = {}
    for config, successors in cg.edges.items():
        for _effect, target in successors:
            backward.setdefault(target, set()).add(config)
    seen = set(goal)
    frontier = list(goal)
    while frontier:
        config = frontier.pop()
        for source in backward.get(config, ()):
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return seen


def _sccs(nodes: set, successors) -> dict:
    """Iterative Tarjan; returns a node -> component-id mapping."""
    index_counter = [0]
    indices: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    component: dict = {}
    comp_counter = [0]

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(successors(root)))]
        indices[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in nodes:
                    continue
                if successor not in indices:
                    indices[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_counter[0]
                    if member == node:
                        break
                comp_counter[0] += 1
    return component


def _is_infinite(cg: ConfigGraph, useful: set, mode: str) -> bool:
    """See module docstring for the two infinity criteria."""

    def all_successors(config):
        for _effect, target in cg.successors(config):
            if target in useful:
                yield target

    component = _sccs(useful, all_successors)

    if mode == "all":
        for config in useful:
            for effect, target in cg.successors(config):
                if target not in useful:
                    continue
                same_scc = component[config] == component[target]
                if same_scc and effect.is_progress:
                    return True
                if config == target and effect.is_progress:
                    return True
        return False

    # Restricted modes: only stay-edge cycles with captures pump results.
    def stay_successors(config):
        for effect, target in cg.successors(config):
            if target in useful and effect.append is None:
                yield target

    stay_component = _sccs(useful, stay_successors)
    for config in useful:
        for effect, target in cg.successors(config):
            if target not in useful or effect.append is not None:
                continue
            if effect.capture is None:
                continue
            if config == target:
                return True  # capturing stay self-loop
            if stay_component[config] == stay_component[target]:
                return True  # capturing edge on a stay-only cycle
    return False


def _geodesic_filter(cg: ConfigGraph, useful: set):
    """Restrict to transitions on minimum-append accepting runs (0/1 BFS)."""
    INF = float("inf")
    dist_from: dict = {config: INF for config in useful}
    queue: deque = deque()
    for start in cg.starts:
        if start in useful:
            dist_from[start] = 0
            queue.append(start)
    while queue:
        config = queue.popleft()
        for effect, target in cg.successors(config):
            if target not in useful:
                continue
            weight = 1 if effect.append is not None else 0
            candidate = dist_from[config] + weight
            if candidate < dist_from.get(target, INF):
                dist_from[target] = candidate
                if weight == 0:
                    queue.appendleft(target)
                else:
                    queue.append(target)

    backward: dict = {}
    for config in useful:
        for effect, target in cg.successors(config):
            if target in useful:
                backward.setdefault(target, []).append((effect, config))
    dist_to: dict = {config: INF for config in useful}
    queue = deque()
    goals = [config for config in cg.accepting if config in useful]
    for goal in goals:
        dist_to[goal] = 0
        queue.append(goal)
    while queue:
        config = queue.popleft()
        for effect, source in backward.get(config, ()):
            weight = 1 if effect.append is not None else 0
            candidate = dist_to[config] + weight
            if candidate < dist_to.get(source, INF):
                dist_to[source] = candidate
                if weight == 0:
                    queue.appendleft(source)
                else:
                    queue.append(source)

    best = min((dist_from[g] for g in goals), default=INF)

    def on_geodesic(config, effect, target) -> bool:
        weight = 1 if effect.append is not None else 0
        return (
            dist_from.get(config, INF) + weight + dist_to.get(target, INF) == best
        )

    return best, on_geodesic


def evaluate_dlrpq(
    query: "Regex | str",
    graph: PropertyGraph,
    source: ObjectId,
    target: ObjectId,
    mode: str = "all",
    limit: int | None = None,
    budget=None,
) -> Iterator[PathBinding]:
    """Yield ``(p, mu)`` results of ``sigma_{source,target}([[R]]_G)`` under
    the mode, each distinct pair once.

    Paths may start or end with edges (the symmetric design of Example 21);
    ``source``/``target`` refer to ``src(p)``/``tgt(p)``, which look through
    boundary edges.  The empty path never appears in results (it has no
    endpoints).  A ``budget`` is ticked per dequeued configuration so a
    deadline or cancellation stops the run enumeration between yields.
    """
    if mode not in PATH_MODES:
        raise EvaluationError(f"unknown path mode {mode!r}; use one of {PATH_MODES}")
    regex = _as_regex(query)
    if not graph.has_node(source) or not graph.has_node(target):
        return
    if budget is not None:
        budget.check()
    cg = build_config_graph(regex, graph, source)
    goals = cg.finals_by_target.get(target, set())
    if not goals:
        return
    useful = _coreachable(cg, goals) & cg.configs
    accepting_here = set(goals)

    if mode == "shortest":
        best, on_geodesic = _geodesic_filter(
            ConfigGraph(
                graph=cg.graph,
                source=cg.source,
                starts=cg.starts,
                configs=cg.configs,
                edges=cg.edges,
                accepting=accepting_here,
            ),
            useful,
        )
        if best == float("inf"):
            return
        edge_filter = on_geodesic
    else:
        edge_filter = None

    if limit is None and _is_infinite(
        _restricted_view(cg, accepting_here, useful, edge_filter), useful, mode
    ):
        raise InfiniteResultError(
            "infinitely many (path, mu) results; pass a limit or change mode"
        )

    yield from _bounded(
        _enumerate(cg, accepting_here, useful, mode, edge_filter, budget), limit
    )


def _restricted_view(cg, accepting, useful, edge_filter) -> ConfigGraph:
    if edge_filter is None:
        return ConfigGraph(
            graph=cg.graph,
            source=cg.source,
            starts=cg.starts,
            configs=cg.configs,
            edges=cg.edges,
            accepting=accepting,
        )
    edges: dict = {}
    for config in useful:
        kept = [
            (effect, target)
            for effect, target in cg.successors(config)
            if target in useful and edge_filter(config, effect, target)
        ]
        if kept:
            edges[config] = kept
    return ConfigGraph(
        graph=cg.graph,
        source=cg.source,
        starts=cg.starts,
        configs=cg.configs,
        edges=edges,
        accepting=accepting,
    )


def _bounded(iterator, limit):
    if limit is None:
        yield from iterator
        return
    count = 0
    for item in iterator:
        yield item
        count += 1
        if count >= limit:
            return


def _enumerate(
    cg: ConfigGraph,
    accepting: set,
    useful: set,
    mode: str,
    edge_filter,
    budget=None,
) -> Iterator[PathBinding]:
    """Breadth-first enumeration of accepted runs, deduplicated on (p, mu)."""
    graph = cg.graph
    emitted: set[PathBinding] = set()
    tick = budget.tick if budget is not None else None

    # queue entries: (config, path_objects, mu_lists, used, since_progress)
    queue: deque = deque()
    for start in cg.starts:
        if start in useful:
            queue.append((start, (), (), frozenset(), frozenset()))

    def result_of(path_objects, mu_lists) -> PathBinding:
        lists: dict = {}
        for variable, obj in mu_lists:
            lists[variable] = lists.get(variable, ()) + (obj,)
        return PathBinding(Path(graph, path_objects), ListBinding(lists))

    while queue:
        if tick is not None:
            tick()
        config, path_objects, mu_lists, used, since_progress = queue.popleft()
        if config in accepting and path_objects:
            binding = result_of(path_objects, mu_lists)
            if binding not in emitted:
                emitted.add(binding)
                yield binding
        for effect, target in cg.successors(config):
            if target not in useful:
                continue
            if edge_filter is not None and not edge_filter(config, effect, target):
                continue
            new_path = path_objects
            new_used = used
            if effect.append is not None:
                obj = effect.append
                if mode == "simple" and graph.has_node(obj) and obj in used:
                    continue
                if mode == "trail" and graph.has_edge(obj) and obj in used:
                    continue
                new_path = path_objects + (obj,)
                if mode == "simple" and graph.has_node(obj):
                    new_used = used | {obj}
                elif mode == "trail" and graph.has_edge(obj):
                    new_used = used | {obj}
            new_mu = mu_lists
            if effect.capture is not None:
                new_mu = mu_lists + ((effect.capture, effect.matched),)
            if effect.is_progress:
                new_since = frozenset()
            else:
                if target in since_progress:
                    continue  # a no-progress cycle adds nothing new
                new_since = since_progress | {target}
            queue.append((target, new_path, new_mu, new_used, new_since))


def dlrpq_pairs(
    query: "Regex | str", graph: PropertyGraph, sources=None
) -> set[tuple[ObjectId, ObjectId]]:
    """All ``(src(p), tgt(p))`` pairs witnessed by some matching path.

    Decided on the finite configuration graph, so this terminates even when
    the path set is infinite — the data-complexity story of Section 6.4.
    """
    regex = _as_regex(query)
    nfa = compile_dlrpq(regex)
    answers: set[tuple[ObjectId, ObjectId]] = set()
    nodes = sources if sources is not None else list(graph.iter_nodes())
    for source in nodes:
        if not graph.has_node(source):
            continue
        cg = build_config_graph(nfa, graph, source)
        for target in cg.finals_by_target:
            answers.add((source, target))
    return answers
