"""RPQs and CRPQs with data tests and list variables (Section 3.2).

dl-RPQs extend l-RPQs to property graphs with

* symmetric node atoms ``( )`` and edge atoms ``[ ]`` — paths may start and
  end with either kind, unlike GQL;
* element tests (the ``ETest`` grammar): ``x := pname`` stores a property
  value in a data variable, ``pname op c`` and ``pname op x`` filter on it;
* list variables ``(a^z)`` / ``[a^z]`` capturing nodes *or* edges.

Evaluation uses a register-automaton-style configuration search (Section
6.4, [69, 78]): configurations are (current object, automaton state, value
assignment) triples, and the active domain of the graph keeps the space
finite.

* :mod:`~repro.datatests.ast` — atoms and the ETest grammar;
* :mod:`~repro.datatests.parser` — the paper's surface syntax;
* :mod:`~repro.datatests.register` — the configuration graph;
* :mod:`~repro.datatests.dlrpq` — evaluation of single dl-RPQs under modes;
* :mod:`~repro.datatests.dlcrpq` — dl-CRPQs (Section 3.2.2).
"""

from repro.datatests.ast import (
    AssignTest,
    ConstTest,
    DLAtom,
    Kind,
    LabelMatch,
    VarTest,
    edge_atom,
    node_atom,
)
from repro.datatests.parser import parse_dlrpq
from repro.datatests.dlrpq import dlrpq_pairs, evaluate_dlrpq
from repro.datatests.dlcrpq import DLCRPQ, DLCRPQAtom, evaluate_dlcrpq, parse_dlcrpq

__all__ = [
    "DLAtom",
    "Kind",
    "LabelMatch",
    "AssignTest",
    "ConstTest",
    "VarTest",
    "node_atom",
    "edge_atom",
    "parse_dlrpq",
    "evaluate_dlrpq",
    "dlrpq_pairs",
    "DLCRPQ",
    "DLCRPQAtom",
    "parse_dlcrpq",
    "evaluate_dlcrpq",
]
