"""dl-CRPQs: CRPQs with data tests and list variables (Section 3.2.2).

Syntax and semantics are "verbatim the same" as l-CRPQs (Section 3.1.5)
except that atoms are dl-RPQs.  The textual form mirrors the l-CRPQ one::

    q(x, z) :- shortest [Transfer^z]((_)[Transfer^z])*(x, y),
               (isBlocked = 'no')(y, y)

Each atom is ``[mode] DLRPQ(term, term)`` where the dl-RPQ uses the
Section 3.2.1 surface syntax (``( )`` for node atoms, ``[ ]`` for edge
atoms — consecutive edge atoms re-test the *same* edge via the collapsing
concatenation, so chains of edges are written with interleaved ``(_)``
node atoms).  The final ``(term, term)`` pair is an *argument list*, not a
node atom — the parser peels it off the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crpq.ast import Var, _parse_term, _split_top_level
from repro.datatests.ast import dl_data_variables, dl_list_variables
from repro.datatests.dlrpq import dlrpq_pairs, evaluate_dlrpq
from repro.datatests.parser import parse_dlrpq
from repro.errors import ParseError, QueryError
from repro.graph.property_graph import PropertyGraph
from repro.listvars.lcrpq import ListVar, _MODE_PREFIX
from repro.regex.ast import Regex
from repro.rpq.path_modes import PATH_MODES


@dataclass(frozen=True, slots=True)
class DLCRPQAtom:
    """``m R(y, y')`` with ``R`` a dl-RPQ."""

    mode: str
    regex: Regex
    left: object
    right: object

    def __post_init__(self) -> None:
        if self.mode not in PATH_MODES:
            raise QueryError(f"unknown mode {self.mode!r}; use one of {PATH_MODES}")

    def node_variables(self) -> frozenset:
        found = set()
        if isinstance(self.left, Var):
            found.add(self.left)
        if isinstance(self.right, Var):
            found.add(self.right)
        return frozenset(found)

    def list_variables(self) -> frozenset:
        return dl_list_variables(self.regex)

    def data_variables(self) -> frozenset:
        return dl_data_variables(self.regex)


@dataclass(frozen=True, slots=True)
class DLCRPQ:
    """A dl-CRPQ: node/list-variable head, moded dl-RPQ atoms."""

    head: tuple
    atoms: tuple[DLCRPQAtom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        node_vars: set[Var] = set()
        seen_lists: set = set()
        for atom in self.atoms:
            node_vars |= atom.node_variables()
            atom_lists = atom.list_variables()
            overlap = seen_lists & atom_lists
            if overlap:
                raise QueryError(
                    f"list variables {sorted(overlap)!r} shared across atoms"
                )
            seen_lists |= atom_lists
        clash = {var.name for var in node_vars} & set(seen_lists)
        if clash:
            raise QueryError(
                f"variables {sorted(clash)!r} used both as node and list variables"
            )
        for entry in self.head:
            if isinstance(entry, Var):
                if entry not in node_vars:
                    raise QueryError(f"head variable {entry!r} not in the body")
            elif isinstance(entry, ListVar):
                if entry.name not in seen_lists:
                    raise QueryError(f"head list variable {entry!r} not in the body")
            else:
                raise QueryError(f"head entries must be variables, got {entry!r}")


def parse_dlcrpq(text: str) -> DLCRPQ:
    """Parse a dl-CRPQ (see module docstring)."""
    if ":-" not in text:
        raise ParseError("a dl-CRPQ needs a ':-' between head and body")
    head_text, body_text = text.split(":-", 1)
    head_text = head_text.strip()
    if not head_text.endswith(")") or "(" not in head_text:
        raise ParseError(f"malformed head {head_text!r}")
    name, args_text = head_text.split("(", 1)
    head_names = [
        part.strip()
        for part in _split_top_level(args_text[:-1].strip(), ",")
        if part.strip()
    ]

    atoms: list[DLCRPQAtom] = []
    for part in _split_top_level(body_text.strip(), ","):
        part = part.strip()
        if not part:
            continue
        mode = "all"
        match = _MODE_PREFIX.match(part)
        if match:
            mode = match.group(1)
            part = part[match.end() :].strip()
        atoms.append(_parse_atom(mode, part))

    list_vars: set = set()
    for atom in atoms:
        list_vars |= atom.list_variables()
    head: list = []
    for entry in head_names:
        head.append(ListVar(entry) if entry in list_vars else Var(entry))
    return DLCRPQ(head=tuple(head), atoms=tuple(atoms), name=name.strip() or "q")


def _parse_atom(mode: str, text: str) -> DLCRPQAtom:
    if not text.endswith(")"):
        raise ParseError(f"atom {text!r} does not end with a term list")
    depth = 0
    open_index = None
    for index in range(len(text) - 1, -1, -1):
        char = text[index]
        if char == ")":
            depth += 1
        elif char == "(":
            depth -= 1
            if depth == 0:
                open_index = index
                break
    if open_index is None:
        raise ParseError(f"unbalanced parentheses in atom {text!r}")
    regex_text = text[:open_index].strip()
    if not regex_text:
        raise ParseError(f"atom {text!r} is missing its expression")
    terms = _split_top_level(text[open_index + 1 : -1], ",")
    if len(terms) != 2:
        raise ParseError(f"atom {text!r} must have exactly two terms")
    return DLCRPQAtom(
        mode=mode,
        regex=parse_dlrpq(regex_text),
        left=_parse_term(terms[0]),
        right=_parse_term(terms[1]),
    )


def evaluate_dlcrpq(
    query: "DLCRPQ | str", graph: PropertyGraph, limit: int | None = None
) -> set[tuple]:
    """Evaluate a dl-CRPQ: node-homomorphism join, then per-atom moded
    path-binding sets, combined by cartesian product (as in l-CRPQs)."""
    if isinstance(query, str):
        query = parse_dlcrpq(query)

    pair_cache: dict = {}

    def atom_pairs(atom: DLCRPQAtom, sources=None) -> set:
        key = (id(atom), tuple(sorted(sources, key=repr)) if sources else None)
        if key not in pair_cache:
            pair_cache[key] = dlrpq_pairs(atom.regex, graph, sources=sources)
        return pair_cache[key]

    # --- node homomorphisms (sideways joins over endpoint pairs) -------
    bindings: list[dict] = [{}]
    for atom in query.atoms:
        next_bindings: list[dict] = []
        for binding in bindings:
            left = binding.get(atom.left) if isinstance(atom.left, Var) else atom.left
            right = (
                binding.get(atom.right) if isinstance(atom.right, Var) else atom.right
            )
            if left is not None:
                pairs = atom_pairs(atom, sources=[left])
            else:
                pairs = atom_pairs(atom)
            for source, target in pairs:
                if left is not None and source != left:
                    continue
                if right is not None and target != right:
                    continue
                extended = dict(binding)
                if isinstance(atom.left, Var):
                    extended[atom.left] = source
                if isinstance(atom.right, Var):
                    extended[atom.right] = target
                next_bindings.append(extended)
        # dedupe identical partial bindings
        unique = {tuple(sorted(b.items(), key=repr)): b for b in next_bindings}
        bindings = list(unique.values())
        if not bindings:
            break

    # --- attach list bindings per atom ---------------------------------
    mu_cache: dict = {}

    def atom_mus(atom: DLCRPQAtom, source, target) -> list:
        key = (id(atom), source, target)
        if key not in mu_cache:
            seen = set()
            ordered = []
            for result in evaluate_dlrpq(
                atom.regex, graph, source, target, mode=atom.mode, limit=limit
            ):
                mu = result.mu.restrict(atom.list_variables())
                if mu not in seen:
                    seen.add(mu)
                    ordered.append(mu)
            mu_cache[key] = ordered
        return mu_cache[key]

    results: set[tuple] = set()
    for h in bindings:
        choices: list[list] = []
        feasible = True
        for atom in query.atoms:
            source = h[atom.left] if isinstance(atom.left, Var) else atom.left
            target = h[atom.right] if isinstance(atom.right, Var) else atom.right
            mus = atom_mus(atom, source, target)
            if not mus:
                feasible = False
                break
            choices.append(mus)
        if not feasible:
            continue
        for combination in _cartesian(choices):
            merged: dict = {}
            for mu in combination:
                for variable, values in mu.items():
                    merged[variable] = values
            row = []
            for entry in query.head:
                if isinstance(entry, Var):
                    row.append(h[entry])
                else:
                    row.append(merged.get(entry.name, ()))
            results.add(tuple(row))
    return results


def _cartesian(choices: list[list]):
    if not choices:
        yield ()
        return
    head, *tail = choices
    for item in head:
        for rest in _cartesian(tail):
            yield (item,) + rest
