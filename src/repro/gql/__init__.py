"""A GQL-flavored pattern engine (Sections 1 and 5).

Where :mod:`repro.coregql` is the paper's clean theoretical distillation,
this package deliberately reproduces the *practice* side, including the
behaviours the paper criticizes:

* the ASCII-art pattern syntax ``(x)-[z:a]->(y)`` with quantifiers and
  ``WHERE`` conditions (:mod:`~repro.gql.parser`);
* the syntax-driven variable semantics in which the same variable is a
  *join* (singleton) inside an unrepeated subpattern but a *group variable*
  (list collector) under repetition — so ``pi{2}`` is **not** ``pi pi``
  (Examples 1 and 2, :mod:`~repro.gql.semantics`);
* path variables, path-set outputs and ``EXCEPT`` (Section 5.2 "Turning to
  Complement for Help", :mod:`~repro.gql.pathsets`);
* Cypher-style list functions ``N(p)``, ``E(p)`` and ``reduce`` with the
  subset-sum and Diophantine pitfalls (Section 5.2 "Turning to Lists for
  Help", :mod:`~repro.gql.listfuncs`).
"""

from repro.gql.ast import Alt, Cmp, EdgePat, NodePat, Quant, Seq, Where
from repro.gql.parser import parse_gql_pattern
from repro.gql.semantics import GQLMatch, match_gql_pattern
from repro.gql.pathsets import except_paths, match_path_set
from repro.gql.listfuncs import (
    diophantine_two_semantics,
    edges_of,
    increasing_edges_via_reduce,
    nodes_of,
    reduce_list,
    subset_sum_paths,
)
from repro.gql.forall import (
    all_values_distinct_via_forall,
    increasing_edges_via_forall,
    match_with_forall,
)
from repro.gql.rows import naming_sensitivity, result_rows

__all__ = [
    "NodePat",
    "EdgePat",
    "Seq",
    "Alt",
    "Quant",
    "Where",
    "Cmp",
    "parse_gql_pattern",
    "match_gql_pattern",
    "GQLMatch",
    "match_path_set",
    "except_paths",
    "nodes_of",
    "edges_of",
    "reduce_list",
    "increasing_edges_via_reduce",
    "subset_sum_paths",
    "diophantine_two_semantics",
    "match_with_forall",
    "increasing_edges_via_forall",
    "all_values_distinct_via_forall",
    "result_rows",
    "naming_sensitivity",
]
