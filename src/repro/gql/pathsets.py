"""Path variables and path-set EXCEPT (Section 5.2, "Turning to Complement").

Cypher, GQL and SQL/PGQ allow naming the matched path (``p = pi``) and
returning it, so query results can be *sets of paths*; combined with
``EXCEPT`` this expresses the increasing-edge-values query by subtracting
the paths that violate the condition somewhere.  The paper's point — which
benchmark E11 measures — is that this detour materializes the full path
sets, so it performs poorly compared to the direct dl-RPQ evaluation.
"""

from __future__ import annotations

from repro.gql.semantics import match_gql_pattern
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph


def match_path_set(
    pattern,
    graph: PropertyGraph,
    source=None,
    target=None,
    max_length: "int | None" = None,
) -> set[Path]:
    """``(p = pi)_p`` — the set of paths matched by the pattern, optionally
    filtered to given endpoints."""
    paths = set()
    for match in match_gql_pattern(pattern, graph, max_length=max_length):
        if source is not None and match.path.src != source:
            continue
        if target is not None and match.path.tgt != target:
            continue
        paths.add(match.path)
    return paths


def except_paths(left: set[Path], right: set[Path]) -> set[Path]:
    """``pi'_p - pi''_p`` — path-set difference (GQL's EXCEPT)."""
    return left - right


def increasing_edges_via_except(
    graph: PropertyGraph,
    source,
    target,
    prop: str = "k",
    max_length: "int | None" = None,
) -> set[Path]:
    """The Section 5.2 workaround, verbatim.

    ``pi' = p = ((x) ->* (y))`` collects **all** paths; ``pi''`` matches the
    paths containing two consecutive edges whose property does not increase
    (the negation of the condition); the answer is the difference.  Note how
    this evaluates both patterns completely before subtracting — the
    compositional cost the paper highlights.
    """
    all_paths = match_path_set(
        "(x) ->* (y)", graph, source=source, target=target, max_length=max_length
    )
    violating = match_path_set(
        f"((x) ->* () -[u]-> () -[v]-> () ->* (y) WHERE u.{prop} >= v.{prop})",
        graph,
        source=source,
        target=target,
        max_length=max_length,
    )
    return except_paths(all_paths, violating)
