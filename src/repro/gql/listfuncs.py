"""Cypher-style list functions and their pitfalls (Section 5.2,
"Turning to Lists for Help").

``N(p)`` and ``E(p)`` extract the node and edge lists of a path; ``reduce``
folds over a list.  The paper shows that this recovers the increasing-edge
query but also makes NP-complete (subset sum) and even undecidable
(Diophantine) queries "deceptively easy to write"; the functions here are
used by experiments E12 and E13 to measure exactly that.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.errors import EvaluationError
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.rpq.path_modes import matching_paths


def nodes_of(path: Path) -> tuple:
    """Cypher's ``nodes(p)`` — the paper's ``N(p)``."""
    return path.nodes()


def edges_of(path: Path) -> tuple:
    """Cypher's ``relationships(p)`` — the paper's ``E(p)``."""
    return path.edges()


def reduce_list(
    epsilon, iota: Callable, combine: Callable, items: Sequence
):
    """The paper's ``reduce_{eps, iota, f}``.

    Returns ``epsilon`` on the empty list, ``iota(x)`` on a singleton, and
    ``f(x, reduce(tail))`` otherwise (a right fold whose base case maps the
    last element through ``iota``).
    """
    items = list(items)
    if not items:
        return epsilon
    if len(items) == 1:
        return iota(items[0])
    return combine(items[0], reduce_list(epsilon, iota, combine, items[1:]))


def _walks(
    graph: PropertyGraph,
    source,
    target,
    mode: str,
    max_length: "int | None",
    label=None,
) -> Iterator[Path]:
    """All label-matching walks under a mode (the ``p = (x) ->* (y)`` part)."""
    query = f"{label}*" if label is not None else "_*"
    limit = None
    if mode == "all" and max_length is None:
        raise EvaluationError("mode 'all' needs max_length for walk queries")
    if mode == "all":
        # enumerate in length order and stop beyond the bound
        for path in matching_paths(query, graph, source, target, mode="all", limit=10**9):
            if len(path) > max_length:
                return
            yield path
    else:
        yield from matching_paths(query, graph, source, target, mode=mode)


def increasing_edges_via_reduce(
    graph: PropertyGraph,
    source,
    target,
    prop: str = "k",
    mode: str = "trail",
    max_length: "int | None" = None,
) -> set[Path]:
    """Section 5.2's reduce-based increasing-edge query.

    ``iota`` maps an edge to its (assumed non-negative) property value;
    ``f(e, v)`` propagates the value while the sequence increases and
    collapses to ``-1`` otherwise; a path qualifies iff the fold is >= 0.
    """

    def iota(edge):
        value = graph.get_property(edge, prop)
        return value if isinstance(value, (int, float)) else -1

    def combine(edge, value):
        edge_value = graph.get_property(edge, prop)
        if not isinstance(edge_value, (int, float)):
            return -1
        if value >= 0 and edge_value < value:
            # the suffix is increasing and this edge continues it downward-
            # free: edge must be strictly below the suffix head; reduce folds
            # right-to-left so "increasing" means edge.k < value.
            return edge_value
        return -1

    answers = set()
    for path in _walks(graph, source, target, mode, max_length):
        if len(path) == 0:
            continue
        if reduce_list(0, iota, combine, edges_of(path)) >= 0:
            answers.add(path)
    return answers


def subset_sum_paths(
    graph: PropertyGraph,
    source,
    target,
    prop: str = "k",
    target_sum: int = 0,
    mode: str = "trail",
    max_length: "int | None" = None,
) -> set[Path]:
    """``p = ((x) ->* (y)) < reduce_{0, iota, +}(E(p)) = target_sum >``.

    On :func:`repro.graph.generators.subset_sum_graph` this enumerates all
    edge choices, so its running time grows exponentially with the number
    of stages — the query is NP-complete in data complexity even under the
    restrictive path modes (Section 5.2).
    """

    def iota(edge):
        return graph.get_property(edge, prop, default=0)

    def combine(edge, value):
        return iota(edge) + value

    answers = set()
    for path in _walks(graph, source, target, mode, max_length):
        if reduce_list(0, iota, combine, edges_of(path)) == target_sum:
            answers.add(path)
    return answers


def path_property_sum(graph: PropertyGraph, path: Path, prop: str = "k"):
    """``Sigma_p`` — the sum of an edge property along a path (via reduce)."""
    return reduce_list(
        0,
        lambda edge: graph.get_property(edge, prop, default=0),
        lambda edge, value: graph.get_property(edge, prop, default=0) + value,
        edges_of(path),
    )


def diophantine_two_semantics(
    graph: PropertyGraph,
    label: str = "l",
    prop_a: str = "a",
    prop_b: str = "b",
    prop_c: str = "c",
    k_prop: str = "k",
    max_iterations: int = 50,
) -> dict:
    """The Section 5.2 ambiguity: ``shortest`` + a condition on ``Sigma_p``.

    Two candidate semantics for
    ``p = ((:l) ->+ (x:l)) < x.a * Sigma_p^2 + x.b * Sigma_p + x.c = 0 >``:

    * ``condition_after_shortest`` — compute the shortest path first, then
      test the condition on it (on the self-loop graph: test a+b+c = 0 on
      the one-step path);
    * ``shortest_satisfying`` — search for the shortest path satisfying the
      condition; on the self-loop graph the path length is a positive root
      of ``a x^2 + b x + c``, so this amounts to solving the equation
      (bounded here by ``max_iterations``, since in general it is
      undecidable).

    Returns a dict with both answers so callers can exhibit the divergence.
    """
    loops = [
        node
        for node in graph.iter_nodes()
        if graph.node_label(node) == label
        and any(graph.tgt(e) == node for e in graph.out_edges(node))
    ]
    report: dict = {"condition_after_shortest": set(), "shortest_satisfying": set()}
    for node in loops:
        a = graph.get_property(node, prop_a, 0)
        b = graph.get_property(node, prop_b, 0)
        c = graph.get_property(node, prop_c, 0)
        loop_edges = [e for e in graph.out_edges(node) if graph.tgt(e) == node]
        k = graph.get_property(loop_edges[0], k_prop, 0)

        # Semantics 1: shortest first (the one-loop path), condition after.
        sigma = k
        if a * sigma * sigma + b * sigma + c == 0:
            report["condition_after_shortest"].add((node, 1))

        # Semantics 2: shortest path whose Sigma_p satisfies the condition.
        for length in range(1, max_iterations + 1):
            sigma = k * length
            if a * sigma * sigma + b * sigma + c == 0:
                report["shortest_satisfying"].add((node, length))
                break
    return report
