"""Result rows and the naming/deduplication quirk (Section 4.2).

"The interplay between deduplication and pattern matching in GQL leads to
some counter-intuitive results, such as query results depending on whether
a variable was given a name or not [35, Section 6]."

The mechanism: result rows expose only the *named* variables.  Under
GQL-style deduplication, two matches that differ only in anonymous elements
collapse into one row — so adding a name to an otherwise-irrelevant element
can multiply the row count.  Under pure bag semantics every match keeps its
own row and naming changes nothing.  Both readings are provided so the
divergence can be measured (experiment E28).
"""

from __future__ import annotations

from collections import Counter

from repro.gql.semantics import match_gql_pattern
from repro.graph.property_graph import PropertyGraph


def result_rows(
    pattern,
    graph: PropertyGraph,
    distinct: bool = True,
    max_length: "int | None" = None,
):
    """The rows a GQL query returns for the pattern.

    A row is the binding restricted to the pattern's named variables (as a
    sorted tuple of ``(var, value)`` pairs).  ``distinct=True`` deduplicates
    rows (GQL's set-flavored reading); ``distinct=False`` returns a
    :class:`collections.Counter` giving each row its match multiplicity
    (bag semantics — one entry per distinct (path, binding) match).
    """
    matches = match_gql_pattern(pattern, graph, max_length=max_length)
    if distinct:
        return {match.binding for match in matches}
    counts: Counter = Counter()
    for match in matches:
        counts[match.binding] += 1
    return counts


def naming_sensitivity(
    anonymous_pattern,
    named_pattern,
    graph: PropertyGraph,
    max_length: "int | None" = None,
) -> dict:
    """Measure the Section 4.2 quirk on a pattern pair.

    The two patterns should match the same paths and differ only in whether
    some element carries a variable.  Returns the distinct-row counts for
    both, plus whether bag-semantics totals agree (they should — the quirk
    is purely a deduplication artifact).
    """
    anonymous_distinct = result_rows(
        anonymous_pattern, graph, distinct=True, max_length=max_length
    )
    named_distinct = result_rows(
        named_pattern, graph, distinct=True, max_length=max_length
    )
    anonymous_bag = result_rows(
        anonymous_pattern, graph, distinct=False, max_length=max_length
    )
    named_bag = result_rows(
        named_pattern, graph, distinct=False, max_length=max_length
    )
    return {
        "anonymous_rows": len(anonymous_distinct),
        "named_rows": len(named_distinct),
        "rows_differ": len(anonymous_distinct) != len(named_distinct),
        "anonymous_matches": sum(anonymous_bag.values()),
        "named_matches": sum(named_bag.values()),
        "bag_totals_agree": sum(anonymous_bag.values())
        == sum(named_bag.values()),
    }
