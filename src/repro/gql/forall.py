"""Matching on matched paths: the ``<∀ pi' => theta>`` condition (Section 5.2).

The GQL committee's proposed fix for the increasing-edge-values query
([80, 116]): extend conditions with ``∀ pi' => theta`` — once a path ``p``
matches the outer pattern, the subpattern ``pi'`` is matched *on p only*,
and every such match must satisfy ``theta``.

Matching "on the path" means matching against the path's object *sequence*:
a repeated graph object occupies several positions and each position counts
separately.  We realize this by building a linear *path-view graph* whose
objects are ``(position, object)`` pairs carrying the underlying object's
label and properties, and running the ordinary GQL matcher on it.

The paper's warning comes with the feature: the universal condition
``∀ (u) ->* (v) => u.k != v.k`` ("all property values on the path differ")
is expressible and NP-hard in data complexity — experiment E32 measures the
blow-up.
"""

from __future__ import annotations

from repro.errors import PathError
from repro.gql.ast import GPattern
from repro.gql.semantics import SINGLE, match_gql_pattern
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph


def path_view_graph(path: Path) -> PropertyGraph:
    """The linear property graph of a path's positions.

    Position i of the path becomes object ``(i, obj)`` with ``obj``'s label
    and properties; consecutive positions are wired so that the only paths
    of the view are the contiguous subsequences of ``p``.
    """
    if path.starts_with_edge or path.ends_with_edge:
        raise PathError("path views are defined for node-to-node paths")
    graph = path.graph
    view = PropertyGraph()
    objects = path.objects
    # first pass: nodes
    for index, obj in enumerate(objects):
        if graph.has_node(obj):
            label = (
                graph.object_label(obj)
                if isinstance(graph, PropertyGraph)
                else ""
            )
            properties = (
                graph.properties(obj) if isinstance(graph, PropertyGraph) else {}
            )
            view.add_node((index, obj), label=label, properties=properties)
    # second pass: edges between neighbouring positions
    for index, obj in enumerate(objects):
        if graph.has_edge(obj):
            label = graph.label(obj)
            properties = (
                graph.properties(obj) if isinstance(graph, PropertyGraph) else {}
            )
            view.add_edge(
                (index, obj),
                (index - 1, objects[index - 1]),
                (index + 1, objects[index + 1]),
                label,
                properties=properties,
            )
    return view


def holds_on_path(
    path: Path,
    subpattern: "GPattern | str",
    condition,
    max_length: "int | None" = None,
) -> bool:
    """``p |= <∀ subpattern => condition>``.

    Every match of ``subpattern`` on the path-view of ``p`` must satisfy
    ``condition(graph, binding)``, where the binding maps the subpattern's
    variables to ``(position, object)`` pairs (positions matter: a repeated
    object occupies several positions of the path).
    """
    view = path_view_graph(path)
    for match in match_gql_pattern(subpattern, view, max_length=max_length):
        binding = {}
        for var, (kind, value) in match.binding:
            # values are (position, object) pairs: conditions get to see the
            # position, because a repeated object occupies several positions
            binding[var] = value if kind == SINGLE else tuple(value)
        if not condition(path.graph, binding):
            return False
    return True


def match_with_forall(
    outer_pattern,
    graph: PropertyGraph,
    subpattern,
    condition,
    source=None,
    target=None,
    max_length: "int | None" = None,
) -> set[Path]:
    """``(outer < ∀ subpattern => condition >)`` — the paths of the outer
    pattern on which every subpattern match satisfies the condition.

    ``condition(graph, binding)`` receives bindings over the *original*
    graph objects.
    """
    kept: set[Path] = set()
    for match in match_gql_pattern(outer_pattern, graph, max_length=max_length):
        path = match.path
        if source is not None and path.src != source:
            continue
        if target is not None and path.tgt != target:
            continue
        if holds_on_path(path, subpattern, condition, max_length=max_length):
            kept.add(path)
    return kept


def increasing_edges_via_forall(
    graph: PropertyGraph,
    source,
    target,
    prop: str = "k",
    max_length: "int | None" = None,
) -> set[Path]:
    """The paper's showcase: ``((x) ->* (y)) <∀ (-[u]-> () -[v]->) => u.k < v.k>``.

    Matching the two-consecutive-edges subpattern *on the matched path*
    fixes Example 3's window-slipping problem without dl-RPQs.
    """

    def condition(base_graph, binding) -> bool:
        (_pos_u, u), (_pos_v, v) = binding["u"], binding["v"]
        left = base_graph.get_property(u, prop)
        right = base_graph.get_property(v, prop)
        if left is None or right is None:
            return False
        try:
            return left < right
        except TypeError:
            return False

    return match_with_forall(
        "(x) ->* (y)",
        graph,
        "-[u]-> () -[v]->",
        condition,
        source=source,
        target=target,
        max_length=max_length,
    )


def all_values_distinct_via_forall(
    graph: PropertyGraph,
    source,
    target,
    prop: str = "k",
    max_length: "int | None" = None,
) -> set[Path]:
    """The paper's warning: ``((x) ->* (y)) <∀ ((u) ->* (v)) => u.k != v.k>``
    asks for paths where all node property values differ — NP-hard in data
    complexity [78].  Expressible here in one line; see E32 for the cost."""

    def condition(base_graph, binding) -> bool:
        (pos_u, u), (pos_v, v) = binding["u"], binding["v"]
        if pos_u == pos_v:
            return True  # the reflexive sub-match at one position
        # distinct positions must carry distinct values — a node revisited
        # by the path trivially violates this (its value equals itself)
        left = base_graph.get_property(u, prop)
        right = base_graph.get_property(v, prop)
        return left != right

    return match_with_forall(
        "(x) ->* (y)",
        graph,
        "(u) ->* (v)",
        condition,
        source=source,
        target=target,
        max_length=max_length,
    )
