"""AST for ASCII-art graph patterns (shared by the GQL and CoreGQL layers).

The surface syntax is the familiar one from Cypher/GQL/SQL-PGQ::

    (x)         (x:Account)      ()              -- node patterns
    -[z]->      -[:Transfer]->   ->              -- edge patterns
    (x) (()-[z:a]->()){2} (y)                    -- concatenation, quantifier
    ((u)-[:a]->(v) WHERE u.date < v.date)*       -- condition, star
    pi1 | pi2                                    -- disjunction

The same AST is interpreted twice: with GQL's syntax-driven group-variable
semantics (:mod:`repro.gql.semantics`) and, after translation, with the
CoreGQL semantics (:mod:`repro.coregql.parser`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


class GPattern:
    """Base class for ASCII-art pattern nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class NodePat(GPattern):
    """``(x:L)`` — both the variable and the label are optional."""

    var: object = None
    label: object = None


@dataclass(frozen=True)
class EdgePat(GPattern):
    """``-[z:L]->`` — a forward edge; variable and label optional."""

    var: object = None
    label: object = None


@dataclass(frozen=True)
class Seq(GPattern):
    """Juxtaposition of subpatterns."""

    parts: tuple

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise QueryError("a sequence needs at least two parts")


@dataclass(frozen=True)
class Alt(GPattern):
    """Disjunction ``pi1 | pi2`` (n-ary)."""

    parts: tuple


@dataclass(frozen=True)
class Quant(GPattern):
    """Quantified subpattern: ``{n}``, ``{n,m}``, ``*`` (0..inf), ``+`` (1..inf),
    ``?`` (0..1).  ``high=None`` means unbounded."""

    inner: GPattern
    low: int
    high: "int | None"

    def __post_init__(self) -> None:
        if self.low < 0 or (self.high is not None and self.high < self.low):
            raise QueryError(f"invalid quantifier bounds {self.low}..{self.high}")


@dataclass(frozen=True)
class Where(GPattern):
    """``(pi WHERE theta)`` — a filtered subpattern."""

    inner: GPattern
    condition: "BoolExpr"


# ----------------------------------------------------------------------
# WHERE conditions
# ----------------------------------------------------------------------
class BoolExpr:
    __slots__ = ()


@dataclass(frozen=True)
class Cmp(BoolExpr):
    """``x.prop op rhs`` where rhs is ``(var, prop)`` or a constant.

    ``op`` ranges over =, !=, <, >, <=, >=.
    """

    var: object
    prop: object
    op: str
    rhs_var: object = None
    rhs_prop: object = None
    const: object = None
    rhs_is_const: bool = False


@dataclass(frozen=True)
class BAnd(BoolExpr):
    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True)
class BOr(BoolExpr):
    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True)
class BNot(BoolExpr):
    inner: BoolExpr


def pattern_variables(pattern: GPattern) -> frozenset:
    """All (node and edge) variables syntactically present in the pattern."""
    if isinstance(pattern, (NodePat, EdgePat)):
        return frozenset() if pattern.var is None else frozenset({pattern.var})
    if isinstance(pattern, Seq):
        result: frozenset = frozenset()
        for part in pattern.parts:
            result |= pattern_variables(part)
        return result
    if isinstance(pattern, Alt):
        result = frozenset()
        for part in pattern.parts:
            result |= pattern_variables(part)
        return result
    if isinstance(pattern, (Quant, Where)):
        return pattern_variables(pattern.inner)
    raise TypeError(f"not an ASCII pattern: {pattern!r}")
