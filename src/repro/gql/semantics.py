"""GQL-style pattern matching with singleton and group variables.

This engine deliberately implements the *syntax-driven* semantics that
Examples 1 and 2 of the paper dissect:

* within an unrepeated subpattern, multiple occurrences of a variable are a
  **join** — they must bind to the same element (``(x)-[:a]->(x)`` matches
  self-loops);
* adjacent node patterns join too, because path concatenation glues on a
  shared node (``(u)(v)`` forces ``u = v``);
* when the parse tree passes through a quantifier, every variable of the
  quantified subpattern becomes a **group variable** that collects one
  element per iteration into a list — and group variables do *not* join.

Consequently ``pi{2}`` is not equivalent to ``pi pi`` (Example 1), which is
exactly the disconnect from regular expressions the paper criticizes; the
repaired design is :mod:`repro.listvars`.

Bindings map variables to ``("single", element)`` or ``("group", tuple)``.
Mixing the two kinds for one variable, or giving one group variable two
homes, is a static type error in GQL and raises :class:`QueryError` here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfiniteResultError, QueryError
from repro.gql.ast import (
    Alt,
    BAnd,
    BNot,
    BOr,
    BoolExpr,
    Cmp,
    EdgePat,
    GPattern,
    NodePat,
    Quant,
    Seq,
    Where,
    pattern_variables,
)
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph

#: binding entry kinds
SINGLE = "single"
GROUP = "group"

Binding = tuple  # sorted tuple of (var, (kind, value)) pairs


@dataclass(frozen=True)
class GQLMatch:
    """One match: the matched path and the variable bindings."""

    path: Path
    binding: Binding

    def get(self, var):
        """The bound value: an element for singletons, a tuple for groups."""
        for name, (kind, value) in self.binding:
            if name == var:
                return value
        return None

    def kind_of(self, var):
        for name, (kind, _value) in self.binding:
            if name == var:
                return kind
        return None


def _freeze(binding: dict) -> Binding:
    return tuple(sorted(binding.items(), key=lambda item: repr(item[0])))


def _merge(mu1: Binding, mu2: Binding) -> "Binding | None":
    """Join two bindings: singletons must agree; group conflicts are type
    errors (GQL forbids one group variable in two sibling subpatterns)."""
    merged = dict(mu1)
    for var, (kind, value) in mu2:
        if var not in merged:
            merged[var] = (kind, value)
            continue
        other_kind, other_value = merged[var]
        if kind == SINGLE and other_kind == SINGLE:
            if value != other_value:
                return None
        else:
            raise QueryError(
                f"variable {var!r} is used as a group variable in two "
                "sibling subpatterns (a GQL type error)"
            )
    return _freeze(merged)


def _evaluate_condition(
    condition: BoolExpr, graph: PropertyGraph, binding: dict
) -> bool:
    if isinstance(condition, BAnd):
        return _evaluate_condition(condition.left, graph, binding) and (
            _evaluate_condition(condition.right, graph, binding)
        )
    if isinstance(condition, BOr):
        return _evaluate_condition(condition.left, graph, binding) or (
            _evaluate_condition(condition.right, graph, binding)
        )
    if isinstance(condition, BNot):
        return not _evaluate_condition(condition.inner, graph, binding)
    if isinstance(condition, Cmp):
        return _evaluate_comparison(condition, graph, binding)
    raise TypeError(f"not a condition: {condition!r}")


def _property_of(graph, binding, var, prop):
    if var not in binding:
        return None
    kind, value = binding[var]
    if kind != SINGLE:
        raise QueryError(
            f"WHERE references {var!r}, which is a group variable in scope"
        )
    if not graph.has_property(value, prop):
        return None
    return graph.get_property(value, prop)


def _evaluate_comparison(cmp: Cmp, graph, binding: dict) -> bool:
    left = _property_of(graph, binding, cmp.var, cmp.prop)
    if left is None:
        return False
    if cmp.rhs_is_const:
        right = cmp.const
    else:
        right = _property_of(graph, binding, cmp.rhs_var, cmp.rhs_prop)
        if right is None:
            return False
    try:
        return {
            "=": left == right,
            "!=": left != right,
            "<": left < right,
            ">": left > right,
            "<=": left <= right,
            ">=": left >= right,
        }[cmp.op]
    except TypeError:
        return False


def match_gql_pattern(
    pattern: "GPattern | str",
    graph: PropertyGraph,
    max_length: "int | None" = None,
    *,
    use_index: bool = True,
    stats=None,
) -> set[GQLMatch]:
    """All matches of the pattern on the graph.

    ``max_length`` bounds path lengths for unbounded quantifiers on cyclic
    graphs (otherwise :class:`InfiniteResultError` is raised when the match
    set would be infinite).

    With ``use_index=True`` (default) labeled edge patterns enumerate via
    the engine's label index instead of scanning every edge;
    ``use_index=False`` keeps the seed's linear scans (the differential
    oracle).  ``stats`` collects engine counters when provided.
    """
    if isinstance(pattern, str):
        from repro.gql.parser import parse_gql_pattern

        pattern = parse_gql_pattern(pattern)
    return {
        GQLMatch(path, binding)
        for path, binding in _match(pattern, graph, max_length, (use_index, stats))
    }


def _match(pattern, graph, bound, ctx=(False, None)) -> set[tuple[Path, Binding]]:
    use_index, stats = ctx
    if isinstance(pattern, NodePat):
        results = set()
        for node in graph.iter_nodes():
            if pattern.label is not None and graph.object_label(node) != pattern.label:
                continue
            binding = (
                _freeze({pattern.var: (SINGLE, node)})
                if pattern.var is not None
                else ()
            )
            results.add((Path.trivial(graph, node), binding))
        return results
    if isinstance(pattern, EdgePat):
        results = set()
        if bound is not None and bound < 1:
            return results
        if use_index and pattern.label is not None:
            from repro.engine.index import get_index

            records = get_index(graph, stats).edges_with_label(pattern.label)
        else:
            records = (
                (edge, *graph.endpoints(edge))
                for edge in graph.iter_edges()
                if pattern.label is None or graph.label(edge) == pattern.label
            )
        scanned = 0
        for edge, src, tgt in records:
            scanned += 1
            binding = (
                _freeze({pattern.var: (SINGLE, edge)})
                if pattern.var is not None
                else ()
            )
            results.add((Path.of(graph, (src, edge, tgt)), binding))
        if stats is not None:
            stats.count("edges_scanned", scanned)
        return results
    if isinstance(pattern, Seq):
        current = _match(pattern.parts[0], graph, bound, ctx)
        for part in pattern.parts[1:]:
            step = _match(part, graph, bound, ctx)
            combined = set()
            for path1, mu1 in current:
                for path2, mu2 in step:
                    if path1.tgt != path2.src:
                        continue
                    merged = _merge(mu1, mu2)
                    if merged is None:
                        continue
                    joined = path1.concat(path2)
                    if bound is not None and len(joined) > bound:
                        continue
                    combined.add((joined, merged))
            current = combined
        return current
    if isinstance(pattern, Alt):
        results = set()
        for part in pattern.parts:
            results |= _match(part, graph, bound, ctx)
        return results
    if isinstance(pattern, Where):
        return {
            (path, mu)
            for path, mu in _match(pattern.inner, graph, bound, ctx)
            if _evaluate_condition(pattern.condition, graph, dict(mu))
        }
    if isinstance(pattern, Quant):
        return _match_quant(pattern, graph, bound, ctx)
    raise TypeError(f"not an ASCII pattern: {pattern!r}")


def _match_quant(pattern: Quant, graph, bound, ctx=(False, None)):
    """Repetition turns every inner variable into a group variable.

    ``[[pi]]^j``: j endpoint-chained matches of pi; the resulting binding
    maps each inner variable to the list of its per-iteration values (group
    values of nested quantifiers are flattened, as GQL's lists are flat).
    """
    inner = _match(pattern.inner, graph, bound, ctx)

    def group_up(mu: Binding) -> dict:
        grouped = {}
        for var, (kind, value) in mu:
            grouped[var] = (GROUP, (value,) if kind == SINGLE else tuple(value))
        return grouped

    def append_iteration(acc: dict, mu: Binding) -> dict:
        extended = dict(acc)
        for var, (kind, value) in mu:
            items = (value,) if kind == SINGLE else tuple(value)
            previous = extended.get(var, (GROUP, ()))[1]
            extended[var] = (GROUP, tuple(previous) + items)
        return extended

    # level j = 0: trivial paths, all inner variables bound to empty lists.
    empty_groups = {
        var: (GROUP, ()) for var in pattern_variables(pattern.inner)
    }
    current = {
        (Path.trivial(graph, node), _freeze(dict(empty_groups)))
        for node in graph.iter_nodes()
    }
    accumulated: set = set()
    iteration = 0
    seen_levels: set[frozenset] = set()
    safety_cap = graph.num_nodes + graph.num_edges + 1
    while True:
        in_window = iteration >= pattern.low and (
            pattern.high is None or iteration <= pattern.high
        )
        if in_window:
            accumulated |= current
            if pattern.high is None:
                level = frozenset(current)
                if level in seen_levels:
                    break
                seen_levels.add(level)
        if pattern.high is not None and iteration >= pattern.high:
            break
        extended = set()
        for path1, acc in current:
            for path2, mu in inner:
                if path1.tgt != path2.src:
                    continue
                joined = path1.concat(path2)
                if bound is not None and len(joined) > bound:
                    continue
                extended.add((joined, _freeze(append_iteration(dict(acc), mu))))
        current = extended
        iteration += 1
        if not current:
            break
        if (
            pattern.high is None
            and bound is None
            and any(len(path) > safety_cap for path, _mu in current)
        ):
            raise InfiniteResultError(
                "unbounded quantifier over a cyclic graph yields infinitely "
                "many matches; pass max_length"
            )
    return accumulated
