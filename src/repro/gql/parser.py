"""Parser for the ASCII-art pattern syntax.

Grammar::

    alt     := seq ('|' seq)*
    seq     := quant+
    quant   := element ('*' | '+' | '?' | '{n}' | '{n,m}')*
    element := NODE | EDGE | '(' alt [WHERE cond] ')'
    NODE    := '(' [IDENT] [':' IDENT] ')'
    EDGE    := '-[' [IDENT] [':' IDENT] ']->'  |  '->'

    cond    := disj; disj := conj ('OR' conj)*; conj := atom ('AND' atom)*
    atom    := 'NOT' atom | '(' cond ')' | IDENT '.' IDENT OP rhs
    rhs     := IDENT '.' IDENT | NUMBER | 'quoted'
    OP      := '=' | '<>' | '!=' | '<' | '>' | '<=' | '>='

Grouping parentheses are distinguished from node patterns by content: a
``(...)`` that parses as a node pattern *is* one; anything else is a group.
"""

from __future__ import annotations

import re as _stdlib_re

from repro.errors import ParseError
from repro.gql.ast import (
    Alt,
    BAnd,
    BNot,
    BOr,
    BoolExpr,
    Cmp,
    EdgePat,
    GPattern,
    NodePat,
    Quant,
    Seq,
    Where,
)

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"

_TOKEN_PATTERN = _stdlib_re.compile(
    rf"""
    (?P<WS>\s+)
  | (?P<NODE>\(\s*(?:{_IDENT})?\s*(?::\s*{_IDENT})?\s*\))
  | (?P<EDGE>-\[\s*(?:{_IDENT})?\s*(?::\s*{_IDENT})?\s*\]->)
  | (?P<ARROW>->|-->)
  | (?P<REPEAT>\{{\s*\d+\s*(?:,\s*\d*\s*)?\}})
  | (?P<WHERE>\bWHERE\b)
  | (?P<AND>\bAND\b)
  | (?P<OR>\bOR\b)
  | (?P<NOT>\bNOT\b)
  | (?P<NUMBER>-?\d+(?:\.\d+)?)
  | (?P<QUOTED>'(?:[^'\\]|\\.)*')
  | (?P<IDENT>{_IDENT})
  | (?P<OP><>|!=|<=|>=|[()|*+?.<>=])
""",
    _stdlib_re.VERBOSE,
)

_NODE_CONTENT = _stdlib_re.compile(
    rf"^\(\s*(?P<var>{_IDENT})?\s*(?::\s*(?P<label>{_IDENT}))?\s*\)$"
)
_EDGE_CONTENT = _stdlib_re.compile(
    rf"^-\[\s*(?P<var>{_IDENT})?\s*(?::\s*(?P<label>{_IDENT}))?\s*\]->$"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at {position} in pattern"
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind != "WS":
            tokens.append((kind, value))
    return tokens


class _GQLParser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self):
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of pattern")
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        token = self._peek()
        if token is None or token[1] != value:
            found = token[1] if token else "end of input"
            raise ParseError(f"expected {value!r}, found {found!r}")
        self._index += 1

    # -- patterns --------------------------------------------------------
    def parse(self) -> GPattern:
        result = self.alt()
        token = self._peek()
        if token is not None:
            raise ParseError(f"trailing input starting at {token[1]!r}")
        return result

    def alt(self) -> GPattern:
        parts = [self.seq()]
        while True:
            token = self._peek()
            if token is None or token[1] != "|":
                break
            self._index += 1
            parts.append(self.seq())
        if len(parts) == 1:
            return parts[0]
        return Alt(tuple(parts))

    def _element_follows(self) -> bool:
        token = self._peek()
        return token is not None and token[0] in ("NODE", "EDGE", "ARROW") or (
            token is not None and token[1] == "("
        )

    def seq(self) -> GPattern:
        parts = [self.quant()]
        while self._element_follows():
            parts.append(self.quant())
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def quant(self) -> GPattern:
        result = self.element()
        while True:
            token = self._peek()
            if token is None:
                break
            kind, value = token
            if value == "*":
                self._index += 1
                result = Quant(result, 0, None)
            elif value == "+":
                self._index += 1
                result = Quant(result, 1, None)
            elif value == "?":
                self._index += 1
                result = Quant(result, 0, 1)
            elif kind == "REPEAT":
                self._index += 1
                body = value.strip("{} \t")
                if "," in body:
                    low_text, high_text = body.split(",", 1)
                    low = int(low_text)
                    high = int(high_text) if high_text.strip() else None
                else:
                    low = high = int(body)
                result = Quant(result, low, high)
            else:
                break
        return result

    def element(self) -> GPattern:
        kind, value = self._next()
        if kind == "NODE":
            match = _NODE_CONTENT.match(value)
            assert match is not None
            return NodePat(match.group("var"), match.group("label"))
        if kind == "EDGE":
            match = _EDGE_CONTENT.match(value)
            assert match is not None
            return EdgePat(match.group("var"), match.group("label"))
        if kind == "ARROW":
            return EdgePat(None, None)
        if value == "(":
            inner = self.alt()
            token = self._peek()
            if token is not None and token[0] == "WHERE":
                self._index += 1
                condition = self.condition()
                inner = Where(inner, condition)
            self._expect(")")
            return inner
        raise ParseError(f"unexpected token {value!r} in pattern")

    # -- conditions --------------------------------------------------------
    def condition(self) -> BoolExpr:
        left = self.conjunction()
        while True:
            token = self._peek()
            if token is None or token[0] != "OR":
                return left
            self._index += 1
            left = BOr(left, self.conjunction())

    def conjunction(self) -> BoolExpr:
        left = self.comparison()
        while True:
            token = self._peek()
            if token is None or token[0] != "AND":
                return left
            self._index += 1
            left = BAnd(left, self.comparison())

    def comparison(self) -> BoolExpr:
        token = self._peek()
        if token is not None and token[0] == "NOT":
            self._index += 1
            return BNot(self.comparison())
        if token is not None and token[1] == "(":
            self._index += 1
            inner = self.condition()
            self._expect(")")
            return inner
        kind, value = self._next()
        if kind != "IDENT":
            raise ParseError(f"expected a variable in condition, found {value!r}")
        var = value
        self._expect(".")
        kind, prop = self._next()
        if kind != "IDENT":
            raise ParseError(f"expected a property name, found {prop!r}")
        kind, op = self._next()
        if op not in ("=", "<>", "!=", "<", ">", "<=", ">="):
            raise ParseError(f"expected a comparison operator, found {op!r}")
        if op == "<>":
            op = "!="
        kind, rhs = self._next()
        if kind == "IDENT":
            self._expect(".")
            rhs_kind, rhs_prop = self._next()
            if rhs_kind != "IDENT":
                raise ParseError(f"expected a property name, found {rhs_prop!r}")
            return Cmp(var, prop, op, rhs_var=rhs, rhs_prop=rhs_prop)
        if kind == "NUMBER":
            number = float(rhs) if "." in rhs else int(rhs)
            return Cmp(var, prop, op, const=number, rhs_is_const=True)
        if kind == "QUOTED":
            return Cmp(var, prop, op, const=rhs[1:-1], rhs_is_const=True)
        raise ParseError(f"cannot parse comparison right-hand side {rhs!r}")


def parse_gql_pattern(text: str) -> GPattern:
    """Parse an ASCII-art pattern; Example 1's pattern reads::

        parse_gql_pattern("(x) (()-[z:a]->()){2} (y)")
    """
    return _GQLParser(_tokenize(text)).parse()
