"""The scatter-gather coordinator: shard workers, rounds, replicas.

DESIGN.md §11.  A :class:`ShardCoordinator` owns one
:class:`~repro.server.client.ServerClient` per shard worker (any ``repro
serve`` process) and evaluates RPQs over a graph partitioned by
:mod:`repro.engine.partition`:

1. **Seed** — every requested source node becomes ``(source, q0)`` product
   codes with a one-bit origin mask, routed to the shard owning the source.
2. **Scatter** — each shard with a non-empty frontier gets one
   ``frontier_step`` request (all shards in parallel on a thread pool);
   the shard advances the frontier to a *local* fixpoint and returns
   answers plus cross-shard pairs.
3. **Gather** — the coordinator merges answers, filters cross pairs
   against the global ``known`` mask map (only *novel* origin bits travel
   again), and routes the novel bits to their owners as the next round's
   frontiers.  Masks grow monotonically, so the exchange reaches a
   fixpoint in at most ``diameter(product graph)`` rounds.

**Deadlines** propagate by budget forking: the coordinator's
:class:`~repro.engine.limits.QueryBudget` deadline, minus an RTT slack, is
shipped per round as each ``frontier_step``'s ``timeout`` param, so a
straggler shard trips *inside* the round instead of the coordinator
waiting out the stragglers.  **Fault handling**: a dead shard (connection
loss or a shard-side ``internal``/``shutting_down`` envelope) raises the
typed :class:`~repro.server.protocol.ShardUnavailableError` — a partial
distributed answer is only ever surfaced as a *typed* budget trip, never
as a silently-short result set.

**Replicas**: :meth:`ShardCoordinator.replicate_graph` uploads full copies
to a rendezvous-hashed subset of shards; :meth:`rpq`/:meth:`crpq` route
whole queries to a replica (with failover down the preference list) and
memoize through a coordinator-level answer cache — the read-throughput
path ``benchmarks/bench_shard.py`` gates.

**Resilience** (DESIGN.md §14): a per-shard
:class:`~repro.distributed.breaker.CircuitBreaker` turns repeated shard
deaths into instant typed refusals carrying a ``retry_after`` hint;
``hedge_after`` races slow replicated reads at the next rendezvous replica
(first answer wins); ``allow_degraded`` serves replicated reads from the
coordinator's retained copy — marked ``degraded: true`` and never cached —
when every replica is down.  Pair with a
:class:`~repro.distributed.fleet.FleetSupervisor` (``supervisor=``) and
dead workers are restarted and re-seeded behind the scenes.

A coordinator, like the underlying clients, is **not thread-safe**: drive
concurrency with one coordinator per thread (they can share one shard
fleet).
"""

from __future__ import annotations

import json
import logging
import os
import statistics
import subprocess
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from contextlib import nullcontext
from itertools import islice

from repro.distributed.breaker import BreakerOpenError, CircuitBreaker
from repro.engine.faults import fault_point
from repro.engine.limits import BudgetExceeded
from repro.engine.metrics import MetricsRegistry
from repro.engine.partition import (
    ShardMap,
    make_shard_map,
    partition_graph,
    stable_hash,
)
from repro.engine.stats import EngineStats
from repro.engine.tracing import get_tracer
from repro.distributed.frontier import (
    automaton_plan,
    encode_mask,
    encode_pairs,
    decode_pairs,
    node_order,
)
from repro.errors import ReproError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import symbols, to_string
from repro.server.client import ConnectionLost, ServerClient, ServerError
from repro.server.protocol import (
    BadRequestError,
    GraphNotFoundError,
    ShardUnavailableError,
)
from repro.server.service import AnswerCache

#: Seconds of network slack subtracted from the coordinator's remaining
#: deadline before it is shipped as a shard-side round timeout, so the
#: shard's own (partial-result-carrying) trip beats the transport timeout.
DEFAULT_RTT_SLACK = 0.05

#: Shard-side error codes the coordinator treats as "this shard is gone".
_SHARD_DOWN_CODES = frozenset(
    {"internal", "shutting_down", "graph_not_found", "shard_unavailable"}
)

#: The slow-round log (one ``logging`` record per round slower than the
#: coordinator's ``slow_round_ms``, message = a JSON object).
logger = logging.getLogger("repro.distributed.coordinator")

#: Sentinel for "no replica produced an answer" (a result of ``None`` must
#: stay distinguishable from exhaustion).
_NO_ANSWER = object()


def rendezvous(key: str, candidates) -> list[int]:
    """Candidates by descending rendezvous (highest-random-weight) score.

    Consistent hashing without a ring: each (key, candidate) pair gets a
    process-stable score, and removing a candidate only moves the keys it
    owned.  Used for replica *placement* (key = graph name) and replica
    *routing* (key = graph|op|query), so hot graphs spread reads across
    their replicas deterministically.
    """
    return sorted(
        candidates,
        key=lambda candidate: (stable_hash(f"{key}|{candidate}"), candidate),
        reverse=True,
    )


class ShardStartupError(ReproError):
    """A shard worker process failed to come up (bind failure, crash)."""

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


class ShardLauncher:
    """Spawn and supervise N ``repro serve`` worker processes.

    Each worker announces its bound address as a JSON line on stdout; a
    worker that exits instead (e.g. its port is already bound — the serve
    CLI turns that ``OSError`` into a one-line error and a nonzero exit)
    surfaces as :class:`ShardStartupError` naming the shard and relaying
    the worker's error line.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        host: str = "127.0.0.1",
        ports: "list[int] | None" = None,
        query_timeout: "float | None" = None,
        max_concurrency: "int | None" = None,
        startup_timeout: float = 20.0,
        extra_args: tuple = (),
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if ports is not None and len(ports) != num_shards:
            raise ValueError("need exactly one port per shard")
        self.num_shards = num_shards
        self.host = host
        self.ports = list(ports) if ports is not None else [0] * num_shards
        self.query_timeout = query_timeout
        self.max_concurrency = max_concurrency
        self.startup_timeout = startup_timeout
        self.extra_args = tuple(extra_args)
        self.addresses: list[tuple[str, int]] = []
        self._procs: list[subprocess.Popen] = []

    def _command(self, port: int) -> list[str]:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", str(port),
        ]
        if self.query_timeout is not None:
            command += ["--query-timeout", str(self.query_timeout)]
        if self.max_concurrency is not None:
            command += ["--max-concurrency", str(self.max_concurrency)]
        command += list(self.extra_args)
        return command

    def _environment(self) -> dict:
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        return env

    def start(self) -> list[tuple[str, int]]:
        """Spawn every worker and wait for its listening announcement."""
        if self._procs:
            return self.addresses
        env = self._environment()
        try:
            for shard, port in enumerate(self.ports):
                proc = subprocess.Popen(
                    self._command(port),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=env,
                )
                self._procs.append(proc)
                self.addresses.append(self._await_announce(shard, proc))
        except BaseException:
            self.stop()
            raise
        return self.addresses

    def _await_announce(
        self, shard: int, proc: subprocess.Popen
    ) -> tuple[str, int]:
        announced: dict = {}

        def read() -> None:
            for line in proc.stdout:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if payload.get("event") == "listening":
                    announced.update(payload)
                    return

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(self.startup_timeout)
        if announced:
            return (announced["host"], int(announced["port"]))
        # The reader sees stdout EOF a beat before the process is reapable;
        # give the exit a moment so a bind failure reports as one.
        try:
            status = proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            status = None
        if status is not None:
            stderr = (proc.stderr.read() or "").strip()
            reason = stderr.splitlines()[0] if stderr else "no error output"
            raise ShardStartupError(
                shard, f"worker exited with status {status}: {reason}"
            )
        proc.kill()
        raise ShardStartupError(
            shard, f"worker did not announce within {self.startup_timeout}s"
        )

    def poll(self, shard: int) -> "int | None":
        """The worker's exit status (``None`` while it is still running)."""
        if not self._procs:
            raise RuntimeError("launcher is not started")
        return self._procs[shard].poll()

    def respawn(self, shard: int) -> tuple[str, int]:
        """Kill (if needed) and relaunch one worker on its announced port.

        The originally-announced port is pinned so coordinator address
        lists and replica preference orders stay valid across the restart;
        SIGKILL (not SIGTERM) clears a wedged process, because respawn is
        only reached once the supervisor has already declared it dead —
        there is nothing left worth draining.  Raises
        :class:`ShardStartupError` when the replacement fails to announce
        (e.g. the pinned port is still held by a half-dead predecessor).
        """
        if not self._procs:
            raise RuntimeError("launcher is not started")
        old = self._procs[shard]
        if old.poll() is None:
            old.kill()
            old.wait()
        for stream in (old.stdout, old.stderr):
            if stream is not None:
                stream.close()
        host, port = self.addresses[shard]
        proc = subprocess.Popen(
            self._command(port),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=self._environment(),
        )
        self._procs[shard] = proc
        address = self._await_announce(shard, proc)
        self.addresses[shard] = address
        return address

    def stop(self, timeout: float = 15.0) -> None:
        """SIGTERM every worker (graceful drain) and reap it."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - watchdog
                proc.kill()
                proc.wait()
            for stream in (proc.stdout, proc.stderr):
                if stream is not None:
                    stream.close()
        self._procs = []
        self.addresses = []

    def __enter__(self) -> "ShardLauncher":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _GraphEntry:
    """Coordinator-side state for one distributed graph."""

    __slots__ = (
        "name", "graph", "shard_map", "order", "order_index", "owned_hex",
        "labels", "replicas", "token",
    )

    def __init__(self, name: str, token: int):
        self.name = name
        self.token = token
        self.graph: "EdgeLabeledGraph | None" = None
        self.shard_map: "ShardMap | None" = None
        self.order: list = []
        self.order_index: dict = {}
        self.owned_hex: list[str] = []
        self.labels: frozenset = frozenset()
        self.replicas: tuple[int, ...] = ()


class ShardCoordinator:
    """Distributed query evaluation over a fleet of shard workers."""

    def __init__(
        self,
        addresses,
        *,
        retry=None,
        timeout: float = 60.0,
        answer_cache_size: int = 256,
        rtt_slack: float = DEFAULT_RTT_SLACK,
        telemetry: bool = True,
        slow_round_ms: "float | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        hedge_after: "float | None" = None,
        allow_degraded: bool = False,
        supervisor=None,
    ):
        self.addresses = [tuple(address) for address in addresses]
        if not self.addresses:
            raise ValueError("need at least one shard address")
        if hedge_after is not None and hedge_after <= 0:
            raise ValueError("hedge_after must be positive (or None)")
        self.rtt_slack = rtt_slack
        self.timeout = timeout
        #: seconds to wait for a replica before racing the same read at the
        #: next rendezvous replica (``None`` disables hedging).
        self.hedge_after = hedge_after
        #: when every replica is down, serve replicated reads from the
        #: coordinator's retained copy with a ``degraded: true`` marker
        #: instead of raising ``shard_unavailable`` (opt-in; DESIGN.md §14).
        self.allow_degraded = allow_degraded
        #: an optional :class:`~repro.distributed.fleet.FleetSupervisor`;
        #: when present, partition/replica documents are recorded with it
        #: so a restarted worker can be re-seeded.
        self.supervisor = supervisor
        #: the coordinator's own registry (round counts, frontier sizes,
        #: wire bytes, straggler gaps); ``telemetry=False`` skips all of it
        #: — the bare baseline the disabled-overhead bench arm compares to.
        self.metrics = MetricsRegistry() if telemetry else None
        self.slow_round_ms = slow_round_ms
        self.answer_cache = AnswerCache(answer_cache_size)
        self._clients = [
            ServerClient(host, port, timeout=timeout, retry=retry)
            for host, port in self.addresses
        ]
        #: one breaker per shard, shared by the replica-routing and
        #: scatter-gather paths: a shard declared dead on one path fails
        #: fast on the other too.
        self.breakers = [
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                shard=shard,
            )
            for shard in range(len(self._clients))
        ]
        # A few workers beyond one-per-shard: hedged reads may strand a
        # losing attempt on a pool thread until its server answers, and a
        # scatter-gather round still needs one free worker per shard.
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._clients) + 4,
            thread_name_prefix="repro-shard",
        )
        self._catalog: dict[str, _GraphEntry] = {}
        self._token = 0
        self.rounds_total = 0
        self.frontier_calls = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._clients)

    def close(self) -> None:
        for client in self._clients:
            client.close()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def ping(self) -> list[dict]:
        return [client.ping() for client in self._clients]

    def notify_restart(self, shard: int, address=None) -> None:
        """The supervisor restarted ``shard``: adopt the reborn worker.

        Force-closes the shard's breaker (the supervisor just verified the
        worker with a post-re-seed health check, so the next request must
        not be gated behind a half-open probe) and retires the old client
        connection — it points at a process that no longer exists, and
        marking it broken makes the next request reconnect to the pinned
        port.  Wired as the :class:`FleetSupervisor`'s ``on_restart``
        callback; safe to call from the prober thread (both effects are
        single atomic writes).
        """
        self.breakers[shard].reset()
        self._clients[shard].abandon()

    def stats(self) -> dict:
        return {
            "shards": self.num_shards,
            "rounds_total": self.rounds_total,
            "frontier_calls": self.frontier_calls,
            "answer_cache": self.answer_cache.info(),
            "breakers": [breaker.state for breaker in self.breakers],
            "graphs": sorted(self._catalog),
            "metrics": self.metrics.as_dict() if self.metrics is not None else None,
        }

    def cluster_metrics(self, *, include_coordinator: bool = True) -> MetricsRegistry:
        """Every reachable shard's registry merged exactly into one.

        Each shard answers the ``cluster_metrics`` op with its registry in
        lossless dump form (raw bucket counts); merging is plain addition,
        so every cumulative ``le`` count of the merged histograms equals
        the sum of the per-shard counts.  Unreachable or malformed shards
        are skipped and counted under ``cluster_shards_unreachable``; the
        coordinator's own registry folds in unless ``include_coordinator``
        is off.
        """
        merged = MetricsRegistry()
        unreachable = 0
        for shard, client in enumerate(self._clients):
            try:
                payload = client.cluster_metrics()
                # Validate into a scratch registry first so a malformed
                # shard cannot half-merge into the fleet totals.
                scratch = MetricsRegistry().merge_dump(payload)
            except (ConnectionLost, OSError, ServerError,
                    ValueError, KeyError, TypeError):
                unreachable += 1
                continue
            merged.merge_dump(scratch.dump())
        if include_coordinator and self.metrics is not None:
            merged.merge_dump(self.metrics.dump())
        merged.inc("cluster_shards_total", self.num_shards)
        if unreachable:
            merged.inc("cluster_shards_unreachable", unreachable)
        return merged

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    def _register(self, name: str, graph: EdgeLabeledGraph) -> _GraphEntry:
        self._token += 1
        entry = _GraphEntry(name, self._token)
        entry.graph = graph
        entry.labels = frozenset(graph.labels) if graph is not None else frozenset()
        self._catalog[name] = entry
        self.answer_cache.invalidate_graph(name)
        return entry

    def _entry(self, name: str) -> _GraphEntry:
        entry = self._catalog.get(name)
        if entry is None:
            raise GraphNotFoundError(
                f"coordinator has no distributed graph named {name!r}",
                graph=name,
            )
        return entry

    def partition_graph(
        self, name: str, graph: EdgeLabeledGraph, *, strategy: str = "hash"
    ) -> dict:
        """Partition ``graph`` across every shard and upload the pieces.

        Each shard receives all nodes plus the edges whose source it owns
        (see :mod:`repro.engine.partition`); RPQs on the name then run via
        :meth:`evaluate_rpq`'s scatter-gather rounds.
        """
        shard_map = make_shard_map(graph, self.num_shards, strategy)
        parts = partition_graph(graph, shard_map)
        for shard, (client, part) in enumerate(zip(self._clients, parts)):
            if self.supervisor is not None:
                from repro.graph.serialize import graph_to_dict

                document = graph_to_dict(part)
                self.supervisor.record_seed(shard, name, document)
                client.upload_graph(name, document)
            else:
                client.upload_graph(name, part)
        entry = self._register(name, graph)
        entry.shard_map = shard_map
        entry.order = node_order(graph)
        entry.order_index = {
            node: position for position, node in enumerate(entry.order)
        }
        entry.owned_hex = [
            encode_mask(shard_map.owned_mask(shard, entry.order))
            for shard in range(self.num_shards)
        ]
        return {
            "name": name,
            "mode": "partitioned",
            "strategy": strategy,
            "shards": self.num_shards,
            "nodes_per_shard": shard_map.counts(),
            "edges_per_shard": [part.num_edges for part in parts],
        }

    def replicate_graph(
        self, name: str, graph: EdgeLabeledGraph, *, factor: "int | None" = None
    ) -> dict:
        """Upload full copies of ``graph`` to ``factor`` rendezvous-chosen
        shards (default: all of them) for replica-routed read throughput."""
        factor = self.num_shards if factor is None else factor
        if not 1 <= factor <= self.num_shards:
            raise ValueError("replication factor must be in 1..num_shards")
        replicas = tuple(rendezvous(name, range(self.num_shards))[:factor])
        document = None
        for shard in replicas:
            if document is None:
                from repro.graph.serialize import graph_to_dict

                document = graph_to_dict(graph)
            if self.supervisor is not None:
                self.supervisor.record_seed(shard, name, document)
            self._clients[shard].upload_graph(name, document)
        entry = self._register(name, graph)
        entry.replicas = replicas
        return {
            "name": name,
            "mode": "replicated",
            "factor": factor,
            "replicas": list(replicas),
        }

    def attach_replicas(
        self, name: str, *, factor: "int | None" = None
    ) -> None:
        """Adopt an already-uploaded replicated graph (no upload, no local
        copy) — lets sibling coordinators share one fleet's catalog."""
        factor = self.num_shards if factor is None else factor
        entry = self._register(name, None)
        entry.graph = None
        entry.replicas = tuple(rendezvous(name, range(self.num_shards))[:factor])

    # ------------------------------------------------------------------
    # replica-routed whole queries (the throughput path)
    # ------------------------------------------------------------------
    def _route(self, op: str, name: str, route_key: str, params: dict) -> dict:
        entry = self._entry(name)
        if not entry.replicas:
            raise BadRequestError(
                f"graph {name!r} is partitioned, not replicated; "
                "use evaluate_rpq/evaluate_crpq"
            )
        cache_key = (
            name, entry.token, op,
            json.dumps(params, sort_keys=True, default=str),
        )
        cached = self.answer_cache.get(cache_key)
        if cached is not None:
            return cached
        preference = rendezvous(f"{name}|{route_key}", entry.replicas)
        if self.hedge_after is not None and len(preference) > 1:
            result, last_failure = self._route_hedged(op, name, preference, params)
        else:
            result, last_failure = self._route_failover(op, name, preference, params)
        if result is _NO_ANSWER:
            # Deliberately *before* the cache put: degraded answers (and
            # typed failures) must never alias the exact result under the
            # full-result token key.
            return self._all_replicas_down(op, entry, params, preference, last_failure)
        # Span subtrees are per-request routing payload, not part of
        # the answer: cache the clean result, hand the caller the
        # traced copy (a cached replay must never carry stale spans).
        trace_spans = None
        if isinstance(result, dict):
            trace_spans = result.pop("trace_spans", None)
        self.answer_cache.put(cache_key, result)
        if trace_spans is not None:
            result = dict(result)
            result["trace_spans"] = trace_spans
        return result

    def _route_failover(self, op, name, preference, params):
        """Walk the preference list on the persistent clients, one at a
        time, skipping shards whose breaker refuses; ``(result, None)`` on
        success, ``(_NO_ANSWER, last failure)`` when every replica failed.
        """
        last_failure: "Exception | None" = None
        for shard in preference:
            breaker = self.breakers[shard]
            if not breaker.allow():
                last_failure = BreakerOpenError(shard, breaker.retry_after())
                continue
            try:
                if fault_point("shard.crash"):
                    raise ConnectionLost("injected shard death (dropped)")
                result = self._clients[shard].request(op, graph=name, **params)
            except (ConnectionLost, OSError) as exc:
                breaker.record_failure()
                last_failure = exc
                continue
            except ServerError as exc:
                if exc.code in _SHARD_DOWN_CODES:
                    breaker.record_failure()
                    last_failure = exc
                    continue
                # The shard answered (a typed query error, not a death):
                # resolve any half-open probe in the shard's favour.
                breaker.record_success()
                raise
            breaker.record_success()
            return result, None
        return _NO_ANSWER, last_failure

    def _route_hedged(self, op, name, preference, params):
        """Race the read across replicas: primary first, the next
        rendezvous replica after each ``hedge_after`` without an answer,
        first answer wins.  A losing attempt keeps running on its own
        fresh connection until its server finishes; only its transport is
        discarded (the ops routed here are idempotent reads).
        """
        inflight: dict = {}   # future -> shard
        order: dict = {}      # future -> launch index (0 = primary)
        state = {"position": 0, "launched": 0, "last_failure": None}

        def launch() -> bool:
            while state["position"] < len(preference):
                shard = preference[state["position"]]
                state["position"] += 1
                breaker = self.breakers[shard]
                if not breaker.allow():
                    state["last_failure"] = BreakerOpenError(
                        shard, breaker.retry_after()
                    )
                    continue
                future = self._pool.submit(
                    self._replica_attempt, shard, op, name, params
                )
                inflight[future] = shard
                order[future] = state["launched"]
                state["launched"] += 1
                return True
            return False

        launch()
        while inflight:
            exhausted = state["position"] >= len(preference)
            done, _ = futures_wait(
                set(inflight),
                timeout=None if exhausted else self.hedge_after,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # The hedge timer expired with no answer: fire the next
                # replica and keep both attempts in the race.
                if launch() and self.metrics is not None:
                    self.metrics.inc("coordinator_hedged_requests_total")
                continue
            for future in done:
                shard = inflight.pop(future)
                breaker = self.breakers[shard]
                try:
                    result = future.result()
                except (ConnectionLost, OSError) as exc:
                    breaker.record_failure()
                    state["last_failure"] = exc
                    launch()  # failover immediately, don't wait the timer
                    continue
                except ServerError as exc:
                    if exc.code in _SHARD_DOWN_CODES:
                        breaker.record_failure()
                        state["last_failure"] = exc
                        launch()
                        continue
                    breaker.record_success()
                    raise
                breaker.record_success()
                if order[future] > 0 and self.metrics is not None:
                    self.metrics.inc("coordinator_hedge_wins_total")
                return result, None
        return _NO_ANSWER, state["last_failure"]

    def _replica_attempt(self, shard, op, name, params):
        """One hedged replica attempt, on its own fresh connection.

        Fresh per attempt because the losing attempt holds its connection
        until the server finishes; sharing the coordinator's long-lived
        client would hand one socket to two threads.  The loser's
        server-side work runs to completion and is discarded with its
        connection — a connect handshake is noise next to the query.
        """
        if fault_point("shard.crash"):
            raise ConnectionLost("injected shard death (dropped)")
        host, port = self.addresses[shard]
        client = ServerClient(host, port, timeout=self.timeout)
        try:
            return client.request(op, graph=name, **params)
        finally:
            client.close()

    def _all_replicas_down(self, op, entry, params, preference, last_failure):
        waits = [self.breakers[shard].retry_after() for shard in preference]
        retry_after = min((wait for wait in waits if wait > 0), default=0.0)
        if self.allow_degraded and entry.graph is not None:
            return self._degraded_local(op, entry, params)
        raise ShardUnavailableError(
            f"every replica of {entry.name!r} failed; "
            f"last error: {last_failure}",
            graph=entry.name,
            replicas=list(entry.replicas),
            retry_after=round(retry_after, 3),
        )

    def _degraded_local(self, op, entry, params) -> dict:
        """Serve a replicated read from the coordinator's retained copy.

        The escape hatch behind ``allow_degraded``: every replica is down,
        so instead of a typed refusal the caller gets an answer computed
        on the copy the replicas were seeded from, marked ``degraded:
        true`` — the copy may trail worker-side mutations, so the marker
        is the caller's cue to treat it as stale-tolerant.  Degraded
        results are **never** written to the answer cache (they would
        alias the exact result under the same token key; the chaos suite
        pins this).
        """
        if self.metrics is not None:
            self.metrics.inc("coordinator_degraded_reads_total")
        query = params["query"]
        if op == "rpq":
            from repro.rpq.evaluation import evaluate_rpq

            sources = [params["source"]] if "source" in params else None
            pairs = evaluate_rpq(query, entry.graph, sources)
            return {
                "pairs": sorted(([s, t] for s, t in pairs), key=repr),
                "count": len(pairs),
                "degraded": True,
            }
        if op == "crpq":
            from repro.crpq.evaluation import evaluate_crpq

            kwargs = {}
            if params.get("planner") is not None:
                kwargs["planner"] = params["planner"]
            rows = evaluate_crpq(query, entry.graph, **kwargs)
            return {
                "rows": sorted((list(row) for row in rows), key=repr),
                "count": len(rows),
                "degraded": True,
            }
        raise ShardUnavailableError(
            f"no degraded local path for op {op!r} on {entry.name!r}",
            graph=entry.name,
            op=op,
        )

    def rpq(self, name: str, query: str, source=None, **limits) -> dict:
        """Route one whole RPQ to a replica (result dict, like the client)."""
        params = {"query": query, **{k: v for k, v in limits.items() if v is not None}}
        if source is not None:
            params["source"] = source
        return self._route("rpq", name, f"rpq|{query}|{source!r}", params)

    def crpq(self, name: str, query: str, planner=None, **limits) -> dict:
        params = {"query": query, **{k: v for k, v in limits.items() if v is not None}}
        if planner is not None:
            params["planner"] = planner
        return self._route("crpq", name, f"crpq|{query}", params)

    # ------------------------------------------------------------------
    # scatter-gather RPQ evaluation (the partitioned path)
    # ------------------------------------------------------------------
    def evaluate_rpq(
        self, name: str, query: str, sources=None, *, budget=None
    ) -> set[tuple]:
        """``[[R]]_G`` over the partitioned graph ``name``.

        Answers are exactly :func:`repro.rpq.evaluation.evaluate_rpq` on
        the unpartitioned graph (the differential suites prove it); a
        budget bounds the whole exchange, its deadline propagating into
        every shard round.
        """
        entry = self._entry(name)
        if entry.shard_map is None:
            return self._replicated_pairs(entry, query, sources, budget)
        source_key = (
            None if sources is None
            else repr(sorted(sources, key=repr))
        )
        cache_key = (name, entry.token, "rpq:pairs", query, source_key)
        cached = self.answer_cache.get(cache_key)
        if cached is not None:
            # A cache hit trivially beats any deadline, but the row ceiling
            # is about answer *size*, not effort — enforce it either way.
            if (
                budget is not None
                and budget.max_rows is not None
                and len(cached) > budget.max_rows
            ):
                raise BudgetExceeded(
                    f"evaluation produced more than {budget.max_rows} "
                    "answer rows",
                    limit="max_rows",
                    rows_so_far=len(cached),
                ).attach_partial(set(islice(cached, budget.max_rows)))
            return set(cached)
        pairs = self._scatter_gather(entry, query, sources, budget)
        self.answer_cache.put(cache_key, frozenset(pairs))
        return pairs

    def _replicated_pairs(self, entry, query, sources, budget) -> set[tuple]:
        """RPQ pairs for a replicated (unpartitioned) graph via routing."""
        limits = {}
        if budget is not None and budget.deadline is not None:
            limits["timeout"] = max(budget.deadline.remaining(), 0.001)
        if sources is not None:
            sources = list(sources)
        if sources is not None and len(sources) == 1:
            result = self.rpq(entry.name, query, source=sources[0], **limits)
            self._require_exact(entry, result)
            return {tuple(pair) for pair in result["pairs"]}
        result = self.rpq(entry.name, query, **limits)
        self._require_exact(entry, result)
        pairs = {tuple(pair) for pair in result["pairs"]}
        if sources is not None:
            keep = set(sources)
            pairs = {pair for pair in pairs if pair[0] in keep}
        return pairs

    @staticmethod
    def _require_exact(entry, result) -> None:
        """Refuse a degraded result on a set-returning evaluation path.

        ``evaluate_rpq``/``evaluate_crpq`` return bare answer sets — there
        is no channel to carry the ``degraded`` marker, and the exactness
        contract (answers identical to single-node evaluation, or a typed
        error) would be silently violated.  Only the result-dict
        ``rpq``/``crpq`` API, where callers can see the marker, may serve
        degraded answers.
        """
        if isinstance(result, dict) and result.get("degraded"):
            raise ShardUnavailableError(
                f"replicated evaluation of {entry.name!r} needs an exact "
                "replica answer; the degraded local fallback only serves "
                "the result-dict rpq/crpq API where the marker is visible",
                graph=entry.name,
                degraded=True,
            )

    def _scatter_gather(self, entry, query, sources, budget) -> set[tuple]:
        stats = EngineStats()
        # The global alphabet every shard must compile over: graph labels
        # plus the query's own symbols (a symbol absent from the graph still
        # shapes the trimmed automaton identically everywhere).
        alphabet = sorted(entry.labels | symbols(_parse(query)), key=repr)
        plan = automaton_plan(query, alphabet, stats=stats)
        bits = plan.state_bits
        order = entry.order
        order_index = entry.order_index
        shard_of = entry.shard_map.shard_of

        # Seed: (source, q0) codes, one origin bit per source, owner-routed.
        known: dict[int, int] = {}
        pending: list[dict[int, int]] = [{} for _ in range(self.num_shards)]
        seed_nodes = order if sources is None else [
            source for source in sources if source in order_index
        ]
        for source in seed_nodes:
            position = order_index[source]
            bit = 1 << position
            owner = shard_of(source)
            shard_pending = pending[owner]
            for initial_state in plan.initial:
                code = (position << bits) | initial_state
                shard_pending[code] = shard_pending.get(code, 0) | bit
                known[code] = known.get(code, 0) | bit

        answer_masks: dict[int, int] = {}
        pair_count = 0
        # Coordinator-side merge work runs under a fork of the caller's
        # budget: same deadline and cancellation, fresh counters for this
        # traversal's own ticks.
        merge_budget = budget.fork() if budget is not None else None
        tick = merge_budget.tick if merge_budget is not None else None
        tracer = get_tracer()
        rounds = 0
        query_started = time.perf_counter()
        root_cm = (
            tracer.span("coordinator.rpq", graph=entry.name, query=query)
            if tracer.enabled
            else nullcontext()
        )
        try:
            with root_cm:
                while any(pending):
                    rounds += 1
                    if merge_budget is not None:
                        merge_budget.check()  # barrier between rounds
                    round_timeout = self._round_timeout(budget)
                    calls = [
                        (shard, frontier)
                        for shard, frontier in enumerate(pending)
                        if frontier
                    ]
                    pending = [{} for _ in range(self.num_shards)]
                    round_started = time.perf_counter()
                    round_cm = (
                        tracer.span("coordinator.round", round=rounds)
                        if tracer.enabled
                        else nullcontext()
                    )
                    with round_cm as round_span:
                        # Captured on *this* thread: the pool threads the
                        # frontier calls run on have empty span stacks, so
                        # the round span's context must ride in explicitly.
                        trace_ctx = tracer.trace_context()
                        futures = [
                            (
                                shard,
                                len(frontier),
                                self._pool.submit(
                                    self._frontier_call, shard, entry, query,
                                    alphabet, bits, frontier, round_timeout,
                                    rounds, trace_ctx,
                                ),
                            )
                            for shard, frontier in calls
                        ]
                        frontier_codes = sum(len(f) for _, f in calls)
                        novel_bits = sum(
                            mask.bit_count()
                            for _, frontier in calls
                            for mask in frontier.values()
                        )
                        latencies: list[float] = []
                        bytes_sent = bytes_received = bounced = 0
                        for shard, frontier_size, future in futures:
                            envelope = self._collect(shard, future, rounds)
                            result = envelope["result"]
                            latencies.append(envelope["elapsed"])
                            received = len(json.dumps(result["answers"])) + len(
                                json.dumps(result["cross"])
                            )
                            bytes_sent += envelope["sent_bytes"]
                            bytes_received += received
                            bounced += result.get("bounced", 0) or 0
                            if round_span is not None:
                                self._graft_shard_trees(
                                    round_span, result, shard, rounds,
                                    frontier_size, envelope, received,
                                )
                            for position, mask in decode_pairs(
                                result["answers"]
                            ).items():
                                if tick is not None:
                                    tick()
                                recorded = answer_masks.get(position, 0)
                                novel = mask & ~recorded
                                if novel:
                                    answer_masks[position] = recorded | novel
                                    pair_count += novel.bit_count()
                            if budget is not None:
                                budget.check_rows(pair_count)
                            for code, mask in decode_pairs(
                                result["cross"]
                            ).items():
                                if tick is not None:
                                    tick()
                                seen = known.get(code, 0)
                                novel = mask & ~seen
                                if not novel:
                                    continue
                                known[code] = seen | novel
                                owner = shard_of(order[code >> bits])
                                shard_pending = pending[owner]
                                shard_pending[code] = (
                                    shard_pending.get(code, 0) | novel
                                )
                        self._record_round(
                            round_span, rounds, entry.name, len(calls),
                            frontier_codes, novel_bits, bounced,
                            bytes_sent, bytes_received, latencies,
                            time.perf_counter() - round_started,
                        )
        except BudgetExceeded as exc:
            raise exc.attach_partial(_decode_answers(answer_masks, order))
        finally:
            self.rounds_total += rounds
            if self.metrics is not None:
                self.metrics.inc("coordinator_queries_total")
                self.metrics.observe(
                    "coordinator_query_seconds",
                    time.perf_counter() - query_started,
                )
        return _decode_answers(answer_masks, order)

    def _graft_shard_trees(
        self, round_span, result, shard, round_number,
        frontier_size, envelope, received,
    ) -> None:
        """Attach a shard's returned span subtree under the round span.

        The subtree root is the shard's ``server.request`` (already a
        remote child of the round span by trace context); the coordinator
        stamps it with what only it knows — which shard answered, which
        round, and the wire cost of the exchange.
        """
        trees = result.get("trace_spans")
        if not isinstance(trees, list):
            return
        for tree in trees:
            if not isinstance(tree, dict):
                continue
            attributes = tree.setdefault("attributes", {})
            attributes["shard"] = shard
            attributes["round"] = round_number
            attributes["frontier"] = frontier_size
            attributes["wire_bytes_sent"] = envelope["sent_bytes"]
            attributes["wire_bytes_received"] = received
            attributes["latency_ms"] = round(envelope["elapsed"] * 1000, 3)
            round_span.graft(tree)

    def _record_round(
        self, round_span, round_number, graph, shard_count,
        frontier_codes, novel_bits, bounced,
        bytes_sent, bytes_received, latencies, elapsed,
    ) -> None:
        """Per-round telemetry: span attributes, registry, slow-round log."""
        gap = (
            max(latencies) - statistics.median(latencies)
            if len(latencies) > 1
            else 0.0
        )
        if round_span is not None:
            round_span.set(
                shards=shard_count,
                frontier=frontier_codes,
                novel_bits=novel_bits,
                bounced=bounced,
                wire_bytes_sent=bytes_sent,
                wire_bytes_received=bytes_received,
                straggler_gap_ms=round(gap * 1000, 3),
            )
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("coordinator_rounds_total")
            metrics.inc("coordinator_frontier_codes", frontier_codes)
            metrics.inc("coordinator_novel_bits_routed", novel_bits)
            if bounced:
                metrics.inc("coordinator_bounced_codes", bounced)
            metrics.inc("coordinator_wire_bytes_sent", bytes_sent)
            metrics.inc("coordinator_wire_bytes_received", bytes_received)
            metrics.observe("coordinator_round_seconds", elapsed)
            for latency in latencies:
                metrics.observe("coordinator_shard_round_seconds", latency)
            if len(latencies) > 1:
                metrics.observe("coordinator_straggler_gap_seconds", gap)
        if self.slow_round_ms is not None and elapsed * 1000.0 >= self.slow_round_ms:
            logger.warning(
                "%s",
                json.dumps(
                    {
                        "event": "slow_round",
                        "graph": graph,
                        "round": round_number,
                        "elapsed_ms": round(elapsed * 1000, 3),
                        "threshold_ms": self.slow_round_ms,
                        "shards": shard_count,
                        "frontier": frontier_codes,
                        "straggler_gap_ms": round(gap * 1000, 3),
                    },
                    sort_keys=True,
                ),
            )

    def _round_timeout(self, budget) -> "float | None":
        if budget is None or budget.deadline is None:
            return None
        remaining = budget.deadline.remaining()
        if remaining <= self.rtt_slack:
            # Out of time before the round even starts: trip here with the
            # partial answer rather than shipping an unmeetable timeout.
            budget.check()  # raises if the deadline backing this is gone
            raise BudgetExceeded(
                "distributed evaluation exhausted its deadline between "
                "frontier rounds",
                limit="timeout",
                elapsed=budget.deadline.elapsed(),
            )
        return max(remaining - self.rtt_slack, 0.001)

    def _frontier_call(
        self, shard, entry, query, alphabet, bits, frontier, round_timeout,
        round_number=None, trace=None,
    ) -> dict:
        """One shard's round, on a pool thread.

        Returns an envelope ``{result, elapsed, sent_bytes}`` — the
        latency is clocked here (around the RPC alone) and *recorded* on
        the coordinator thread, because the registry is not thread-safe.
        """
        self.frontier_calls += 1
        breaker = self.breakers[shard]
        # Fail fast on a shard already declared dead: the refusal costs
        # microseconds instead of a transport timeout per round, and the
        # caller surfaces it as a typed shard_unavailable with retry_after.
        breaker.check()
        encoded = encode_pairs(frontier)
        started = time.perf_counter()
        try:
            if fault_point("shard.crash"):
                raise ConnectionLost("injected shard death (dropped)")
            result = self._clients[shard].frontier_step(
                entry.name,
                query,
                frontier=encoded,
                owned=entry.owned_hex[shard],
                state_bits=bits,
                alphabet=alphabet,
                round=round_number,
                trace=trace,
                timeout=round_timeout,
            )
        except (ConnectionLost, OSError):
            breaker.record_failure()
            raise
        except ServerError as exc:
            if exc.code in _SHARD_DOWN_CODES:
                breaker.record_failure()
            else:
                # Budget trips and query errors mean the shard is alive
                # and answering — a straggler is not a corpse.
                breaker.record_success()
            raise
        breaker.record_success()
        return {
            "result": result,
            "elapsed": time.perf_counter() - started,
            "sent_bytes": len(json.dumps(encoded)),
        }

    def _collect(self, shard: int, future, round_number: int) -> dict:
        host, port = self.addresses[shard]
        try:
            return future.result()
        except BreakerOpenError as exc:
            raise ShardUnavailableError(
                f"shard {shard} ({host}:{port}) refused by its open "
                f"circuit breaker during frontier round {round_number}",
                shard=shard,
                round=round_number,
                retry_after=round(exc.retry_after, 3),
            ) from exc
        except (ConnectionLost, OSError) as exc:
            raise ShardUnavailableError(
                f"shard {shard} ({host}:{port}) lost during frontier round "
                f"{round_number}: {exc}",
                shard=shard,
                round=round_number,
            ) from exc
        except ServerError as exc:
            if exc.code in ("timeout", "budget_exceeded"):
                limit = exc.details.get("limit", "timeout")
                raise BudgetExceeded(
                    f"shard {shard} tripped its round budget: {exc.message}",
                    limit=limit if limit in ("timeout", "cancelled", "max_states")
                    else "timeout",
                ) from exc
            if exc.code in _SHARD_DOWN_CODES:
                raise ShardUnavailableError(
                    f"shard {shard} ({host}:{port}) failed frontier round "
                    f"{round_number}: [{exc.code}] {exc.message}",
                    shard=shard,
                    round=round_number,
                    shard_code=exc.code,
                ) from exc
            raise

    # ------------------------------------------------------------------
    # CRPQ: atom-at-a-time joins over distributed RPQ relations
    # ------------------------------------------------------------------
    def evaluate_crpq(
        self, name: str, query: str, *, planner=None, budget=None
    ) -> set[tuple]:
        """``q(G)`` with every atom relation computed by the shard fleet.

        The *plan* still comes from the engine's cost planner running over
        the coordinator's retained copy of the graph (label statistics are
        a coordinator-local concern); execution of each atom goes through
        :class:`DistributedAtomAccess` — bound atoms scatter from their
        bound node, unbound atoms run the full broadcast sweep (or one
        shard-local replica query when the graph is replicated).
        """
        from repro.crpq.evaluation import evaluate_crpq

        entry = self._entry(name)
        if entry.graph is None:
            raise BadRequestError(
                f"graph {name!r} was attached without a local copy; "
                "CRPQ planning needs the coordinator-side graph"
            )
        cache_key = (name, entry.token, "crpq:rows", query, planner)
        cached = self.answer_cache.get(cache_key)
        if cached is not None:
            return set(cached)
        access = DistributedAtomAccess(self, name, budget=budget)
        rows = evaluate_crpq(
            query, entry.graph, planner=planner, budget=budget, access=access
        )
        self.answer_cache.put(cache_key, frozenset(rows))
        return rows


class DistributedAtomAccess:
    """CRPQ atom access paths backed by a :class:`ShardCoordinator`.

    The drop-in distributed twin of
    :class:`repro.crpq.evaluation._AtomAccess`: ``forward`` scatters from
    the bound node, ``full`` runs the broadcast sweep (or a shard-local
    replica query), ``backward`` filters the memoized full relation — the
    reversed-graph trick stays single-node-only because shards only hold
    forward-partitioned edges.  Memoized per evaluation, like the local
    access object, and budgeted via ``budget.subquery()`` (atom relations
    are intermediate results: deadline applies, the row ceiling does not).
    """

    def __init__(self, coordinator: ShardCoordinator, name: str, budget=None):
        self.coordinator = coordinator
        self.name = name
        self.budget = budget.subquery() if budget is not None else None
        self._forward: dict = {}
        self._backward: dict = {}
        self._full: dict = {}

    def forward(self, regex, source) -> set:
        key = (regex, source)
        if key not in self._forward:
            pairs = self.coordinator.evaluate_rpq(
                self.name, to_string(regex), sources=[source],
                budget=self.budget,
            )
            self._forward[key] = {target for _source, target in pairs}
        return self._forward[key]

    def backward(self, regex, target) -> set:
        key = (regex, target)
        if key not in self._backward:
            self._backward[key] = {
                source for source, candidate in self.full(regex)
                if candidate == target
            }
        return self._backward[key]

    def full(self, regex) -> set:
        if regex not in self._full:
            self._full[regex] = self.coordinator.evaluate_rpq(
                self.name, to_string(regex), budget=self.budget
            )
        return self._full[regex]


def _parse(query: str):
    from repro.engine.cache import DEFAULT_CACHE

    return DEFAULT_CACHE.parse(query)


def _decode_answers(answer_masks: dict, order: list) -> set[tuple]:
    """Unpack origin masks into (source, target) node pairs."""
    pairs: set[tuple] = set()
    for target_position, mask in answer_masks.items():
        target = order[target_position]
        while mask:
            low = mask & -mask
            pairs.add((order[low.bit_length() - 1], target))
            mask ^= low
    return pairs
