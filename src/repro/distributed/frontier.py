"""Frontier wire codec and the shard-side product-BFS step.

The distributed RPQ evaluation (DESIGN.md §11) is the kernel's
origin-tracking sweep cut along shard boundaries.  A product pair
``(node, state)`` is a **packed int code** ``(order_index << state_bits) |
state_int`` over two *shared* orderings every process derives
independently:

* the **node order**: graph nodes sorted by ``repr`` — the same order
  :mod:`repro.graph.serialize` writes, identical in the coordinator and in
  every shard because each shard subgraph holds the full node set;
* the **state order**: the trimmed Glushkov NFA's states sorted by
  ``repr`` (the :class:`~repro.engine.cache.IntPlan` numbering).  The
  automaton itself is a pure function of (regex text, alphabet), so the
  coordinator ships the *global* alphabet in every request — a shard
  compiling over only its local labels would trim differently and
  misnumber states.

A **frontier** maps codes to **origin bitmasks** (bit ``i`` = "reachable
from the ``i``-th node in the shared order"), exactly the kernel's
multi-source sweep state.  On the wire, a frontier is the sorted code list
delta-encoded (small ints, cheap JSON) plus a parallel list of hex masks.

:func:`local_frontier_step` is what the ``frontier_step`` protocol op runs
on a shard: advance the received frontier to a *local* fixpoint over the
edges this shard owns, record answers for owned final-state pairs, and
return the cross-shard pairs (codes whose node another shard owns) for the
coordinator to route.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.engine.cache import DEFAULT_CACHE, CompiledQuery
from repro.engine.faults import fault_point
from repro.engine.index import get_index
from repro.graph.edge_labeled import EdgeLabeledGraph, ObjectId


def node_order(graph: EdgeLabeledGraph) -> list[ObjectId]:
    """The shared node numbering: nodes sorted by ``repr``.

    Deterministic across processes (unlike ``iter_nodes`` order or interner
    ids) as long as node ids repr identically — which JSON-native ids, the
    only ones that survive the protocol, do.
    """
    return sorted(graph.iter_nodes(), key=repr)


class AutomatonPlan(NamedTuple):
    """A compiled query plus the shared int numbering of its states."""

    compiled: CompiledQuery
    state_ids: dict
    state_bits: int
    initial: tuple[int, ...]
    finals: frozenset[int]
    #: state int -> tuple of (symbol, (next state ints, ...)) rows
    delta: tuple


def automaton_plan(query: str, alphabet, stats=None) -> AutomatonPlan:
    """Compile ``query`` over exactly ``alphabet`` with shared numbering.

    Every participant (coordinator and all shards) calls this with the same
    query text and the same alphabet, so the resulting state ints agree
    bit-for-bit; ``state_bits`` travels in each request as a cheap
    divergence check.
    """
    sigma = frozenset(alphabet)
    compiled = DEFAULT_CACHE.compile(query, sigma, stats=stats)
    states = sorted(compiled.nfa.states, key=repr)
    state_ids = {state: index for index, state in enumerate(states)}
    state_bits = (len(states) - 1).bit_length() if states else 0
    delta = []
    for state in states:
        rows = [
            (symbol, tuple(state_ids[s] for s in successors))
            for symbol, successors in compiled.delta.get(state, {}).items()
        ]
        rows.sort(key=lambda row: repr(row[0]))
        delta.append(tuple(rows))
    return AutomatonPlan(
        compiled=compiled,
        state_ids=state_ids,
        state_bits=state_bits,
        initial=tuple(sorted(state_ids[s] for s in compiled.initial)),
        finals=frozenset(state_ids[s] for s in compiled.finals),
        delta=tuple(delta),
    )


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
def encode_pairs(mapping: "dict[int, int]") -> dict:
    """``{code: mask}`` as sorted delta-encoded codes + parallel hex masks."""
    codes = sorted(mapping)
    deltas = []
    previous = 0
    for code in codes:
        deltas.append(code - previous)
        previous = code
    return {
        "codes": deltas,
        "masks": [format(mapping[code], "x") for code in codes],
    }


def decode_pairs(payload: dict) -> "dict[int, int]":
    """Invert :func:`encode_pairs` (raises ValueError on malformed input)."""
    if not isinstance(payload, dict):
        raise ValueError("frontier payload must be an object")
    deltas = payload.get("codes", [])
    masks = payload.get("masks", [])
    if not isinstance(deltas, list) or not isinstance(masks, list):
        raise ValueError("frontier 'codes' and 'masks' must be lists")
    if len(deltas) != len(masks):
        raise ValueError("frontier codes/masks length mismatch")
    mapping: dict[int, int] = {}
    code = 0
    for delta, mask in zip(deltas, masks):
        if not isinstance(delta, int) or isinstance(delta, bool):
            raise ValueError("frontier codes must be integers")
        code += delta
        if code < 0:
            raise ValueError("frontier codes must be non-negative")
        if not isinstance(mask, str):
            raise ValueError("frontier masks must be hex strings")
        mapping[code] = int(mask, 16)
    return mapping


def encode_mask(mask: int) -> str:
    """A bitmask as lowercase hex (ownership masks on the wire)."""
    return format(mask, "x")


def decode_mask(text) -> int:
    if not isinstance(text, str):
        raise ValueError("mask must be a hex string")
    return int(text, 16)


# ----------------------------------------------------------------------
# the shard-side step
# ----------------------------------------------------------------------
def local_frontier_step(
    graph: EdgeLabeledGraph,
    query: str,
    alphabet,
    state_bits: int,
    owned_mask: int,
    frontier: "dict[int, int]",
    *,
    stats=None,
    budget=None,
) -> dict:
    """Advance ``frontier`` to a local fixpoint over this shard's edges.

    ``frontier`` maps packed codes (owned by this shard) to the origin
    masks the coordinator found *novel*; expansion stays within the owned
    node set — a successor owned elsewhere is accumulated as a cross pair
    instead of being queued.  Returns ``answers`` (node order index ->
    origin mask for final-state pairs), ``cross`` (code -> novel origin
    mask for other shards), and expansion counters.

    Raises ValueError when ``state_bits`` disagrees with the automaton this
    shard compiles — the divergence tripwire for a coordinator and shard
    that somehow built different automata.
    """
    fault_point("shard.frontier_step")
    plan = automaton_plan(query, alphabet, stats=stats)
    if plan.state_bits != state_bits:
        raise ValueError(
            f"automaton mismatch: coordinator packed {state_bits} state bits, "
            f"shard compiled {plan.state_bits}"
        )
    order = node_order(graph)
    index_of = {node: position for position, node in enumerate(order)}
    index = get_index(graph, stats)
    state_mask = (1 << state_bits) - 1
    finals = plan.finals
    delta = plan.delta
    out_edges = index.out_edges
    tick = budget.tick if budget is not None else None

    #: code -> union of origin bits already seen at that pair this step
    known = dict(frontier)
    pending = dict(frontier)
    queue = deque(pending)
    answers: dict[int, int] = {}
    cross: dict[int, int] = {}
    expanded = 0
    relaxed = 0
    bounced = 0
    while queue:
        code = queue.popleft()
        fresh = pending.pop(code, 0)
        if not fresh:
            continue
        if tick is not None:
            tick()
        expanded += 1
        node_idx = code >> state_bits
        state = code & state_mask
        if state in finals:
            recorded = answers.get(node_idx, 0)
            if fresh & ~recorded:
                answers[node_idx] = recorded | fresh
        if not (owned_mask >> node_idx) & 1:
            # A mis-routed seed: never expand another shard's node; bounce
            # it back as a cross pair and let the coordinator re-route.
            cross[code] = cross.get(code, 0) | fresh
            bounced += 1
            continue
        node = order[node_idx]
        for symbol, next_states in delta[state]:
            for _edge, target in out_edges(node, symbol):
                relaxed += 1
                target_idx = index_of[target]
                base = target_idx << state_bits
                target_owned = (owned_mask >> target_idx) & 1
                for next_state in next_states:
                    successor = base | next_state
                    seen = known.get(successor, 0)
                    novel = fresh & ~seen
                    if not novel:
                        continue
                    known[successor] = seen | novel
                    if target_owned:
                        queued = pending.get(successor, 0)
                        pending[successor] = queued | novel
                        if not queued:
                            queue.append(successor)
                    else:
                        cross[successor] = cross.get(successor, 0) | novel
    if stats is not None:
        stats.count("frontier_steps")
        stats.count("frontier_expanded", expanded)
        stats.count("frontier_relaxed", relaxed)
        if bounced:
            stats.count("frontier_bounced", bounced)
    return {
        "answers": encode_pairs(answers),
        "cross": encode_pairs(cross),
        "expanded": expanded,
        "relaxed": relaxed,
        "bounced": bounced,
        "state_bits": state_bits,
    }
