"""Per-shard circuit breakers: fail fast instead of burning the deadline.

DESIGN.md §14.  A dead shard costs a scatter-gather query one transport
timeout *per round* — with a 60s client timeout, one crashed worker turns
every distributed query into a minute-long hang before the typed
``shard_unavailable`` surfaces.  A :class:`CircuitBreaker` in front of each
shard turns that into an O(1) refusal:

* **closed** — requests flow; consecutive transport/shard-down failures are
  counted, and reaching ``failure_threshold`` trips the breaker **open**
  (any success resets the count — only an unbroken failure run trips);
* **open** — every request is refused instantly with
  :class:`BreakerOpenError` carrying a ``retry_after`` hint (the remaining
  cooldown), so callers surface a typed 503 in microseconds instead of
  waiting out a connect timeout on a corpse;
* **half-open** — once ``cooldown`` elapses, exactly **one** probe request
  is admitted.  Success closes the breaker (the shard healed — usually the
  fleet supervisor restarted and re-seeded it); failure re-opens it for a
  fresh cooldown.  Concurrent callers during the probe are refused: a
  recovering shard must not be greeted by a thundering herd.

The state machine is driven entirely by its callers (``allow`` before an
attempt, ``record_success``/``record_failure`` after) and an injectable
monotonic ``clock``, so the hypothesis suite can walk arbitrary
success/failure/clock-advance sequences without sleeping.

Thread-safety: every transition holds the breaker's lock.  The coordinator
calls ``allow`` from its pool threads (one per shard) and records outcomes
on whichever thread observed them; the single-probe invariant survives
because admission and resolution are both atomic.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ReproError

#: The three breaker states (exported for tests and status displays).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(ReproError):
    """An attempt was refused because the shard's breaker is open.

    ``retry_after`` is the remaining cooldown in seconds — the hint the
    coordinator forwards in its ``shard_unavailable`` envelope so clients
    back off for roughly the right interval instead of guessing.
    """

    def __init__(self, shard: "int | None", retry_after: float):
        super().__init__(
            f"circuit breaker open for shard {shard}; "
            f"retry in {retry_after:.3f}s"
        )
        self.shard = shard
        self.retry_after = retry_after


class CircuitBreaker:
    """Closed → open → half-open → closed, under an injectable clock."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
        shard: "int | None" = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.shard = shard
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: lifetime counters (status displays, tests)
        self.trips = 0
        self.fast_failures = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current state, advancing open → half-open when due.

        Reading the state is side-effect-light: the open→half-open
        transition is a pure function of the clock, so observing it here
        keeps ``state`` consistent with what ``allow`` would do — but no
        probe slot is consumed.
        """
        with self._lock:
            self._advance()
            return self._state

    def retry_after(self) -> float:
        """Seconds until the breaker would admit a half-open probe (0 when
        it already would)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    # ------------------------------------------------------------------
    # the caller protocol: allow → attempt → record
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May an attempt proceed right now?

        ``True`` either means the breaker is closed, or it just admitted
        *the* half-open probe — in which case the caller **must** follow up
        with ``record_success`` or ``record_failure`` to resolve the probe
        (an unresolved probe would block the breaker in half-open forever).
        """
        with self._lock:
            self._advance()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.fast_failures += 1
            return False

    def check(self) -> None:
        """:meth:`allow`, raising :class:`BreakerOpenError` on refusal."""
        if not self.allow():
            raise BreakerOpenError(self.shard, self.retry_after())

    def record_success(self) -> None:
        """An attempt completed: reset to closed (and resolve any probe)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """An attempt died on transport loss or a shard-down envelope."""
        with self._lock:
            self._advance()
            if self._state == HALF_OPEN:
                # The probe failed: a fresh full cooldown, not a leftover.
                self._trip()
                return
            if self._state == OPEN:
                # A straggling attempt admitted before the trip resolved
                # after it; the breaker is already open — keep its clock.
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def reset(self) -> None:
        """Force-close (the supervisor just restarted and re-seeded the
        shard; the next attempt should not be gated behind a probe)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    # ------------------------------------------------------------------
    # internals (lock held)
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probe_in_flight = False
        self.trips += 1
