"""The distributed tier: shard workers plus a scatter-gather coordinator.

See DESIGN.md §11.  :mod:`repro.distributed.frontier` is the wire codec and
the shard-side frontier sweep; :mod:`repro.distributed.coordinator` is the
client-side coordinator (partitioning, synchronous frontier-exchange
rounds, replica routing, the shard-process launcher).
"""

from repro.distributed.coordinator import (
    ShardCoordinator,
    ShardLauncher,
    ShardStartupError,
)

__all__ = ["ShardCoordinator", "ShardLauncher", "ShardStartupError"]
