"""The distributed tier: shard workers plus a scatter-gather coordinator.

See DESIGN.md §11.  :mod:`repro.distributed.frontier` is the wire codec and
the shard-side frontier sweep; :mod:`repro.distributed.coordinator` is the
client-side coordinator (partitioning, synchronous frontier-exchange
rounds, replica routing, the shard-process launcher).  The self-healing
layer (DESIGN.md §14) lives in :mod:`repro.distributed.breaker` (per-shard
circuit breakers) and :mod:`repro.distributed.fleet` (heartbeat probing,
supervised restart, state re-seeding).
"""

from repro.distributed.breaker import BreakerOpenError, CircuitBreaker
from repro.distributed.coordinator import (
    ShardCoordinator,
    ShardLauncher,
    ShardStartupError,
)
from repro.distributed.fleet import FleetSupervisor

__all__ = [
    "BreakerOpenError",
    "CircuitBreaker",
    "FleetSupervisor",
    "ShardCoordinator",
    "ShardLauncher",
    "ShardStartupError",
]
