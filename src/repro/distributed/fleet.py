"""The self-healing fleet: heartbeat probes, supervised restart, re-seeding.

DESIGN.md §14.  PR 7's :class:`~repro.distributed.coordinator.ShardLauncher`
spawns workers and reaps them at shutdown, but a worker that dies *mid-run*
just stays dead: every query touching it raises ``shard_unavailable`` until
a human intervenes.  :class:`FleetSupervisor` closes that loop:

1. **Probe** — a background thread sends the cheap ``health`` control op to
   every worker each ``heartbeat_interval`` seconds over a fresh,
   short-timeout connection (a wedged worker that accepts connections but
   answers nothing still registers as a miss within ``probe_timeout``).  A
   worker whose process has already exited is declared dead immediately —
   no need to wait out ``miss_threshold`` probes on a corpse.
2. **Restart** — after ``miss_threshold`` consecutive misses the worker is
   killed (if still wedged) and respawned **on its originally-announced
   port** (``ShardLauncher.respawn``), so coordinator address lists stay
   valid.  Respawns back off exponentially and are budgeted: more than
   ``max_restarts`` inside ``restart_window`` seconds flips the shard to
   ``failed`` — a crash-looping worker must not be restarted forever — but
   probing continues, and a shard that heals externally is re-adopted.
3. **Re-seed** — a reborn worker has an empty (or durable-snapshot) catalog.
   The supervisor replays the coordinator-retained copy of the shard's
   partition slice or replica set (``record_seed``), *skipping* any graph
   the worker already reports at the last-known durable version — a worker
   launched with ``--data-dir`` reloads its catalog from SQLite, so its
   restart costs one ``health`` round-trip of verification instead of a
   re-upload (DESIGN.md §13 makes restart nearly free).

The supervisor never touches query execution: exactness stays with the
coordinator (typed errors, breakers, hedging).  Its job is only to make
``shard_unavailable`` a transient condition.

Thread model: one prober thread per supervisor; every state mutation holds
``_lock``.  Tests drive :meth:`probe_once` directly (no thread, no clock
races) — the ``fleet.probe`` fault site makes a healthy worker look dead
without killing real processes.
"""

from __future__ import annotations

import threading
import time

from repro.engine.faults import fault_point
from repro.server.client import ConnectionLost, ServerClient, ServerError

#: Per-shard supervisor states.
HEALTHY = "healthy"
SUSPECT = "suspect"      # at least one missed probe, below the threshold
DOWN = "down"            # declared dead; restart pending or in progress
FAILED = "failed"        # restart budget exhausted; left down on purpose

#: Shard-side error codes a probe treats as "this worker is not serving".
_PROBE_DOWN_CODES = frozenset({"internal", "shutting_down"})


class _ShardState:
    __slots__ = (
        "state", "misses", "restarts", "last_probe", "last_error",
        "last_graphs", "probes_total", "misses_total",
    )

    def __init__(self):
        self.state = HEALTHY
        self.misses = 0
        self.restarts: list[float] = []  # monotonic timestamps, pruned
        self.last_probe: "float | None" = None
        self.last_error: "str | None" = None
        #: the last health-reported ``{name: [generation, version]}`` — the
        #: baseline restart verification compares against.
        self.last_graphs: dict = {}
        self.probes_total = 0
        self.misses_total = 0


class FleetSupervisor:
    """Keep a :class:`ShardLauncher` fleet alive through worker deaths."""

    def __init__(
        self,
        launcher,
        *,
        heartbeat_interval: float = 1.0,
        probe_timeout: float = 2.0,
        miss_threshold: int = 3,
        max_restarts: int = 3,
        restart_window: float = 60.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        on_restart=None,
        clock=time.monotonic,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        self.launcher = launcher
        self.heartbeat_interval = heartbeat_interval
        self.probe_timeout = probe_timeout
        self.miss_threshold = miss_threshold
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: ``on_restart(shard, (host, port))`` fires after a successful
        #: respawn + re-seed — coordinators use it to reset the shard's
        #: breaker and retire its (dead) client connection.
        self.on_restart = on_restart
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[int, _ShardState] = {}
        self._seeds: dict[int, dict[str, dict]] = {}
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        #: append-only event log (dicts), for tests and status displays.
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, *, spawn_thread: bool = True) -> list[tuple[str, int]]:
        """Start the fleet (if not already up) and the prober thread."""
        addresses = self.launcher.start()
        with self._lock:
            for shard in range(self.launcher.num_shards):
                self._states.setdefault(shard, _ShardState())
        if spawn_thread and self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-fleet-prober", daemon=True
            )
            self._thread.start()
        return addresses

    def stop(self, timeout: float = 15.0) -> None:
        """Stop probing, then SIGTERM the fleet (graceful drain)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.launcher.stop(timeout=timeout)

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # seed registry (what a reborn worker must be re-taught)
    # ------------------------------------------------------------------
    def record_seed(self, shard: int, name: str, document: dict) -> None:
        """Retain ``document`` as shard ``shard``'s copy of graph ``name``.

        Coordinators call this from ``partition_graph`` (per-shard slices)
        and ``replicate_graph`` (full replicas); re-seeding replays exactly
        these documents.  Re-recording a name replaces the retained copy.
        """
        with self._lock:
            self._seeds.setdefault(shard, {})[name] = document

    def seeds(self, shard: int) -> dict:
        with self._lock:
            return dict(self._seeds.get(shard, {}))

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A JSON-ready snapshot of every shard's supervisor state."""
        with self._lock:
            shards = {}
            for shard, state in sorted(self._states.items()):
                shards[shard] = {
                    "state": state.state,
                    "misses": state.misses,
                    "restarts": len(state.restarts),
                    "probes_total": state.probes_total,
                    "misses_total": state.misses_total,
                    "last_error": state.last_error,
                }
            return {
                "shards": shards,
                "heartbeat_interval": self.heartbeat_interval,
                "miss_threshold": self.miss_threshold,
                "max_restarts": self.max_restarts,
                "events": len(self.events),
            }

    def healthy(self) -> bool:
        with self._lock:
            return bool(self._states) and all(
                state.state == HEALTHY for state in self._states.values()
            )

    def await_healthy(self, timeout: float = 30.0) -> bool:
        """Block until every shard is healthy (or ``timeout`` elapses).

        The recovery benchmark's clock stops here: healthy means every
        worker answered a probe after its restart *and* re-seeding
        finished, so exact answers are available fleet-wide again.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.healthy():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(0.05, self.heartbeat_interval))

    # ------------------------------------------------------------------
    # the probe loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.probe_once()
            except Exception as exc:  # noqa: BLE001 - prober must survive
                self._event("prober_error", shard=None, error=repr(exc))

    def probe_once(self) -> dict:
        """One probe sweep over every shard; returns ``{shard: state}``.

        Public so tests (and the recovery bench) can drive supervision
        deterministically without the background thread.
        """
        results = {}
        for shard in range(self.launcher.num_shards):
            results[shard] = self._probe_shard(shard)
        return results

    def _probe_shard(self, shard: int) -> str:
        state = self._states[shard]
        state.probes_total += 1
        state.last_probe = self._clock()
        # A reaped process needs no miss window: it is dead now.
        exited = self.launcher.poll(shard) is not None
        health = None
        if not exited:
            try:
                fault_point("fleet.probe")
                health = self._probe(shard)
            except (ConnectionLost, OSError, ServerError, Exception) as exc:
                state.last_error = repr(exc)
        if health is not None:
            with self._lock:
                was = state.state
                state.state = HEALTHY
                state.misses = 0
                state.last_error = None
                state.last_graphs = dict(health.get("graphs") or {})
            if was in (DOWN, FAILED):
                # Healed without our help (manual restart, network blip
                # outlasting the budget): adopt it and forget the grudge.
                self._event("readopted", shard=shard)
                with self._lock:
                    state.restarts.clear()
            return HEALTHY
        with self._lock:
            state.misses += 1
            state.misses_total += 1
            misses = state.misses
            if exited:
                misses = self.miss_threshold  # no point waiting
                state.last_error = "worker process exited"
            dead = misses >= self.miss_threshold
            state.state = DOWN if dead else SUSPECT
        self._event(
            "probe_missed", shard=shard, misses=misses,
            exited=exited, error=state.last_error,
        )
        if dead:
            self._restart(shard)
        return self._states[shard].state

    def _probe(self, shard: int) -> dict:
        """One health round-trip on a fresh, short-timeout connection.

        A fresh connection per probe costs one TCP handshake but cannot
        inherit a wedged stream, and a worker restarted behind our back
        never leaves the prober holding a socket to the old process.
        """
        host, port = self.launcher.addresses[shard]
        client = ServerClient(
            host, port,
            timeout=self.probe_timeout,
            control_timeout=self.probe_timeout,
        )
        try:
            health = client.health()
        finally:
            client.close()
        if not isinstance(health, dict) or health.get("status") not in (
            "ok", "draining"
        ):
            raise ConnectionLost(f"malformed health body: {health!r}")
        return health

    # ------------------------------------------------------------------
    # restart + re-seed
    # ------------------------------------------------------------------
    def _restart(self, shard: int) -> None:
        from repro.distributed.coordinator import ShardStartupError

        state = self._states[shard]
        now = self._clock()
        gave_up = False
        with self._lock:
            state.restarts = [
                stamp for stamp in state.restarts
                if now - stamp < self.restart_window
            ]
            exhausted = len(state.restarts) >= self.max_restarts
            if exhausted:
                if state.state != FAILED:
                    state.state = FAILED
                    gave_up = True
                budget_spent = len(state.restarts)
            else:
                attempt = len(state.restarts)
                state.restarts.append(now)
        if exhausted:
            if gave_up:  # emitted outside the (non-reentrant) lock
                self._event(
                    "gave_up", shard=shard, restarts=budget_spent,
                    window=self.restart_window,
                )
            return
        backoff = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        if backoff > 0:
            time.sleep(backoff)
        self._event("restarting", shard=shard, attempt=attempt + 1,
                    backoff=round(backoff, 3))
        try:
            address = self.launcher.respawn(shard)
        except ShardStartupError as exc:
            with self._lock:
                state.last_error = str(exc)
            self._event("restart_failed", shard=shard, error=str(exc))
            return
        try:
            reseeded = self._reseed(shard)
        except (ConnectionLost, OSError, ServerError) as exc:
            # The reborn worker died again before re-seeding finished; the
            # next probe sweep will notice and burn another restart slot.
            with self._lock:
                state.last_error = f"re-seed failed: {exc}"
            self._event("reseed_failed", shard=shard, error=str(exc))
            return
        with self._lock:
            state.state = HEALTHY
            state.misses = 0
            state.last_error = None
        self._event(
            "restarted", shard=shard, address=list(address), **reseeded
        )
        if self.on_restart is not None:
            self.on_restart(shard, address)

    def _reseed(self, shard: int) -> dict:
        """Replay the shard's retained documents, skipping durable survivors.

        Returns ``{"reseeded": [names uploaded], "verified": [names the
        worker already held at the last-known durable version]}`` — a
        ``--data-dir`` worker lands everything in ``verified``.
        """
        host, port = self.launcher.addresses[shard]
        with self._lock:
            seeds = dict(self._seeds.get(shard, {}))
            last_graphs = dict(self._states[shard].last_graphs)
        client = ServerClient(
            host, port,
            timeout=max(self.probe_timeout, 30.0),
            control_timeout=max(self.probe_timeout, 5.0),
        )
        uploaded, verified = [], []
        try:
            health = client.health()
            present = health.get("graphs") or {}
            for name, document in sorted(seeds.items()):
                if name in present and self._version_current(
                    present[name], last_graphs.get(name)
                ):
                    verified.append(name)
                    continue
                client.upload_graph(name, document)
                uploaded.append(name)
            with self._lock:
                self._states[shard].last_graphs = dict(
                    client.health().get("graphs") or {}
                ) if uploaded else dict(present)
        finally:
            client.close()
        return {"reseeded": uploaded, "verified": verified}

    @staticmethod
    def _version_current(reported, last_known) -> bool:
        """Is the reborn worker's durable version of a graph current?

        Versions on the wire are ``[catalog generation, durable version]``;
        the generation is per-process (a restart always mints new ones), so
        only the durable component is comparable across the crash.  With no
        pre-crash baseline the presence of the name is trusted — the store's
        flush-before-reply contract (§13) guarantees acked state survived.
        """
        if not isinstance(reported, (list, tuple)) or len(reported) != 2:
            return False
        if not isinstance(last_known, (list, tuple)) or len(last_known) != 2:
            return True
        return reported[1] >= last_known[1]

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _event(self, kind: str, **fields) -> None:
        record = {"event": kind, "at": round(self._clock(), 3), **fields}
        with self._lock:
            self.events.append(record)
