"""Regular expression abstract syntax.

The inductive definition follows Section 3.1.1 of the paper: epsilon, label
base cases, concatenation, disjunction and Kleene star, plus the
``!S`` wildcards of Remark 11 and the empty language (needed for closure
under complement on the automata side).

Smart constructors (:func:`concat`, :func:`union`, :func:`star`) perform
only the *safe* local normalizations (flattening, unit/absorbing elements);
full simplification lives in :mod:`repro.regex.rewrite`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

SymbolType = Hashable


class Regex:
    """Base class for regular expression nodes.

    Nodes are immutable and hashable; subclasses are the only constructors.
    Operator sugar: ``r1 | r2`` is disjunction, ``r1 >> r2`` concatenation.
    """

    __slots__ = ()

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __rshift__(self, other: "Regex") -> "Regex":
        return concat(self, other)


@dataclass(frozen=True, slots=True)
class Empty(Regex):
    """The empty language (no word matches)."""

    def __repr__(self) -> str:
        return "Empty()"


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def __repr__(self) -> str:
        return "Epsilon()"


@dataclass(frozen=True, slots=True)
class Symbol(Regex):
    """A single symbol.  For plain RPQs the payload is an edge label;
    richer languages use richer (hashable) payloads."""

    symbol: SymbolType

    def __repr__(self) -> str:
        return f"Symbol({self.symbol!r})"


@dataclass(frozen=True, slots=True)
class NotSymbols(Regex):
    """The wildcard ``!S`` of Remark 11: any single symbol not in ``excluded``.

    ``NotSymbols(frozenset())`` matches *every* symbol; the module constant
    :data:`ANY` (the paper's ``_``) is exactly that.
    """

    excluded: frozenset[SymbolType]

    def __repr__(self) -> str:
        return f"NotSymbols({set(self.excluded)!r})" if self.excluded else "ANY"


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """Concatenation of two or more parts."""

    parts: tuple[Regex, ...]

    def __repr__(self) -> str:
        return f"Concat{self.parts!r}"


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """Disjunction of two or more parts."""

    parts: tuple[Regex, ...]

    def __repr__(self) -> str:
        return f"Union{self.parts!r}"


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """Kleene star."""

    inner: Regex

    def __repr__(self) -> str:
        return f"Star({self.inner!r})"


#: The paper's ``_`` wildcard: matches every label.
ANY = NotSymbols(frozenset())

_EPSILON = Epsilon()
_EMPTY = Empty()


# ----------------------------------------------------------------------
# smart constructors
# ----------------------------------------------------------------------
def concat(*parts: Regex) -> Regex:
    """Concatenation with flattening; epsilon is the unit, empty absorbs."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            return _EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return _EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Regex) -> Regex:
    """Disjunction with flattening and duplicate removal; empty is the unit."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        members = part.parts if isinstance(part, Union) else (part,)
        for member in members:
            if member not in seen:
                seen.add(member)
                flat.append(member)
    if not flat:
        return _EMPTY
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner: Regex) -> Regex:
    """Kleene star; ``(R*)* = R*``, ``eps* = eps``, ``empty* = eps``."""
    if isinstance(inner, (Epsilon, Empty)):
        return _EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """``R+`` desugars to ``R . R*`` (as the paper does)."""
    return concat(inner, star(inner))


def optional(inner: Regex) -> Regex:
    """``R?`` desugars to ``R + eps``."""
    return union(inner, _EPSILON)


def repeat(inner: Regex, low: int, high: int | None) -> Regex:
    """Bounded repetition ``R{low,high}``; ``high=None`` means unbounded.

    ``R{2}`` (``low == high``) is the iteration of Example 1; unlike GQL
    group variables, for plain regular expressions ``R{2}`` is literally
    ``R . R``.
    """
    if low < 0 or (high is not None and high < low):
        raise ValueError(f"invalid repetition bounds {{{low},{high}}}")
    required = concat(*([inner] * low)) if low else _EPSILON
    if high is None:
        return concat(required, star(inner))
    optional_tail = _EPSILON
    for _ in range(high - low):
        optional_tail = union(concat(inner, optional_tail), _EPSILON)
    return concat(required, optional_tail)


# ----------------------------------------------------------------------
# structural queries
# ----------------------------------------------------------------------
def nullable(regex: Regex) -> bool:
    """Whether the empty word belongs to the language."""
    if isinstance(regex, (Epsilon, Star)):
        return True
    if isinstance(regex, (Empty, Symbol, NotSymbols)):
        return False
    if isinstance(regex, Concat):
        return all(nullable(part) for part in regex.parts)
    if isinstance(regex, Union):
        return any(nullable(part) for part in regex.parts)
    raise TypeError(f"not a regex node: {regex!r}")


def symbols(regex: Regex) -> frozenset[SymbolType]:
    """All symbols mentioned positively (``Symbol``) or negatively
    (inside a ``!S`` wildcard) in the expression."""
    found: set[SymbolType] = set()

    def walk(node: Regex) -> None:
        if isinstance(node, Symbol):
            found.add(node.symbol)
        elif isinstance(node, NotSymbols):
            found.update(node.excluded)
        elif isinstance(node, Concat) or isinstance(node, Union):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Star):
            walk(node.inner)

    walk(regex)
    return frozenset(found)


def has_wildcard(regex: Regex) -> bool:
    """Whether the expression contains a ``!S`` (or ``_``) wildcard."""
    if isinstance(regex, NotSymbols):
        return True
    if isinstance(regex, (Concat, Union)):
        return any(has_wildcard(part) for part in regex.parts)
    if isinstance(regex, Star):
        return has_wildcard(regex.inner)
    return False


def regex_size(regex: Regex) -> int:
    """The number of AST nodes (a standard expression-size measure)."""
    if isinstance(regex, (Empty, Epsilon, Symbol, NotSymbols)):
        return 1
    if isinstance(regex, (Concat, Union)):
        return 1 + sum(regex_size(part) for part in regex.parts)
    if isinstance(regex, Star):
        return 1 + regex_size(regex.inner)
    raise TypeError(f"not a regex node: {regex!r}")


def map_symbols(regex: Regex, mapping) -> Regex:
    """Rebuild the expression with every Symbol payload passed through
    ``mapping`` (used e.g. to erase list-variable annotations)."""
    if isinstance(regex, Symbol):
        return Symbol(mapping(regex.symbol))
    if isinstance(regex, (Empty, Epsilon, NotSymbols)):
        return regex
    if isinstance(regex, Concat):
        return concat(*(map_symbols(part, mapping) for part in regex.parts))
    if isinstance(regex, Union):
        return union(*(map_symbols(part, mapping) for part in regex.parts))
    if isinstance(regex, Star):
        return star(map_symbols(regex.inner, mapping))
    raise TypeError(f"not a regex node: {regex!r}")


def to_string(regex: Regex, render_symbol=str) -> str:
    """Pretty-print with minimal parentheses, in the paper's notation.

    Union binds loosest, then concatenation (rendered with ``.``), then
    star.  ``render_symbol`` customizes atom rendering for richer payloads.
    """

    def level(node: Regex) -> int:
        if isinstance(node, Union):
            return 0
        if isinstance(node, Concat):
            return 1
        if isinstance(node, Star):
            return 2
        return 3

    def wrap(node: Regex, minimum: int) -> str:
        text = render(node)
        if level(node) < minimum:
            return f"({text})"
        return text

    def render(node: Regex) -> str:
        if isinstance(node, Empty):
            return "∅"
        if isinstance(node, Epsilon):
            return "ε"
        if isinstance(node, Symbol):
            return render_symbol(node.symbol)
        if isinstance(node, NotSymbols):
            if not node.excluded:
                return "_"
            inner = ",".join(sorted(map(render_symbol, node.excluded)))
            return f"!{{{inner}}}"
        if isinstance(node, Union):
            return " + ".join(wrap(part, 1) for part in node.parts)
        if isinstance(node, Concat):
            return ".".join(wrap(part, 2) for part in node.parts)
        if isinstance(node, Star):
            return f"{wrap(node.inner, 3)}*"
        raise TypeError(f"not a regex node: {node!r}")

    return render(regex)


def reverse(regex: Regex) -> Regex:
    """The expression for the reversed language ``L(R)^rev``.

    Used to evaluate an RPQ atom whose *target* is bound: run the reversed
    expression over the reversed graph from the bound node.
    """
    if isinstance(regex, (Empty, Epsilon, Symbol, NotSymbols)):
        return regex
    if isinstance(regex, Concat):
        return concat(*(reverse(part) for part in reversed(regex.parts)))
    if isinstance(regex, Union):
        return union(*(reverse(part) for part in regex.parts))
    if isinstance(regex, Star):
        return star(reverse(regex.inner))
    raise TypeError(f"not a regex node: {regex!r}")


def iter_subexpressions(regex: Regex) -> Iterable[Regex]:
    """Yield every subexpression (including the expression itself)."""
    yield regex
    if isinstance(regex, (Concat, Union)):
        for part in regex.parts:
            yield from iter_subexpressions(part)
    elif isinstance(regex, Star):
        yield from iter_subexpressions(regex.inner)
