"""Regular expressions over edge labels (Section 3.1.1 and Remark 11).

The AST is generic over its symbol type: RPQs use plain labels, RPQs with
list variables use ``(label, variables)`` atoms, and dl-RPQs use the richer
atoms of Section 3.2.1.  Wildcards ``!S`` (match any label outside the finite
set ``S``) and ``_`` (match everything) follow Remark 11 — they are chosen
precisely because they keep the language compilable to finite automata once
a concrete finite alphabet is fixed.
"""

from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    Union,
    ANY,
    concat,
    nullable,
    optional,
    plus,
    regex_size,
    repeat,
    star,
    symbols,
    to_string,
    union,
)
from repro.regex.parser import parse_regex
from repro.regex.rewrite import simplify
from repro.regex.derivatives import derivative_matches

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Symbol",
    "NotSymbols",
    "Concat",
    "Union",
    "Star",
    "ANY",
    "concat",
    "union",
    "star",
    "plus",
    "optional",
    "repeat",
    "nullable",
    "symbols",
    "regex_size",
    "to_string",
    "parse_regex",
    "simplify",
    "derivative_matches",
]
