"""Automata-compatible rewriting of regular expressions.

Section 6.1 of the paper argues that a language design compatible with
automata techniques avoids the SPARQL counting explosion "for one thing,
``(((a*)*)*)*`` can be equivalently rewritten to ``a*``".  This module
implements exactly that kind of language-preserving simplification.

The rules are purely syntactic and each preserves ``L(R)``:

* star collapsing: ``(R*)* -> R*``, ``eps* -> eps``, ``empty* -> eps``;
* star of a union absorbs nullable noise: ``(R + eps)* -> R*``;
* star absorption in unions: ``R + R* -> R*`` and ``eps + R* -> R*``;
* unit and absorbing elements of concatenation and union;
* duplicate removal in unions;
* ``R* . R* -> R*`` (idempotent star concatenation);
* ``(R*)? -> R*`` (via the union rules, since ``?`` desugars to ``+ eps``).

:func:`simplify` applies the rules bottom-up to a fixpoint.  It is *not* a
canonizer — deciding regex equivalence is PSPACE-complete — but it covers
the patterns that occur in query logs (nested stars, duplicated branches).
"""

from __future__ import annotations

from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Union,
    concat,
    nullable,
    star,
    union,
)


def simplify(regex: Regex) -> Regex:
    """Return a language-equivalent, usually smaller, expression."""
    previous = None
    current = regex
    while current != previous:
        previous = current
        current = _simplify_once(current)
    return current


def _simplify_once(regex: Regex) -> Regex:
    if isinstance(regex, Concat):
        parts = [_simplify_once(part) for part in regex.parts]
        parts = _merge_adjacent_stars(parts)
        return concat(*parts)
    if isinstance(regex, Union):
        parts = [_simplify_once(part) for part in regex.parts]
        return union(*_absorb_into_stars(parts))
    if isinstance(regex, Star):
        inner = _simplify_once(regex.inner)
        inner = _strip_nullable_noise(inner)
        return star(inner)
    return regex


def _merge_adjacent_stars(parts: list[Regex]) -> list[Regex]:
    """``R* . R* -> R*`` and ``R* . R -> R . R*`` normalization is not
    attempted; only the directly language-preserving adjacent-star merge."""
    merged: list[Regex] = []
    for part in parts:
        if (
            merged
            and isinstance(part, Star)
            and isinstance(merged[-1], Star)
            and merged[-1].inner == part.inner
        ):
            continue
        merged.append(part)
    return merged


def _absorb_into_stars(parts: list[Regex]) -> list[Regex]:
    """Drop union branches that are subsumed by a sibling star.

    ``R`` and ``eps`` are both contained in ``L(R*)``, so in a union that
    also contains ``R*`` they are redundant.
    """
    star_inners = {part.inner for part in parts if isinstance(part, Star)}
    if not star_inners:
        return parts
    kept: list[Regex] = []
    for part in parts:
        if isinstance(part, Epsilon) or (
            not isinstance(part, Star) and part in star_inners
        ):
            continue
        kept.append(part)
    return kept or [Epsilon()]


def _strip_nullable_noise(inner: Regex) -> Regex:
    """Inside a star, drop union branches that only contribute epsilon.

    ``(R + eps)* = R*`` and more generally any nullable branch whose other
    content is already a branch can be reduced; we implement the epsilon
    case plus unwrapping ``(R*)`` branches: ``(R* + S)* = (R + S)*``.
    """
    if isinstance(inner, Union):
        branches: list[Regex] = []
        for part in inner.parts:
            if isinstance(part, Epsilon):
                continue
            if isinstance(part, Star):
                branches.append(part.inner)
            else:
                branches.append(part)
        if not branches:
            return Epsilon()
        return union(*branches)
    if isinstance(inner, Star):
        return inner.inner
    if isinstance(inner, Concat) and all(nullable(part) for part in inner.parts):
        # (R1 . R2)* with all Ri nullable equals (R1 + R2)*.
        return union(*inner.parts)
    if isinstance(inner, Empty):
        return Epsilon()
    return inner
