"""A recursive-descent parser for RPQ regular expressions.

Grammar (in the paper's notation, adapted to ASCII):

.. code-block:: text

    union   :=  concat (('+' | '|') concat)*
    concat  :=  postfix (('.' postfix) | postfix)*      # '.' optional
    postfix :=  atom ('*' | '+' | '?' | '{n}' | '{n,}' | '{n,m}')*
    atom    :=  LABEL | '_' | '!{' LABEL (',' LABEL)* '}'
              | 'ε' | '<eps>' | '(' union ')'

Labels are identifiers (``[A-Za-z][A-Za-z0-9_]*``) or single-quoted strings
for anything else.  The token ``+`` is *union* when an atom follows it and
*Kleene plus* otherwise, matching how the paper freely writes both
``R1 + R2`` and ``R+``.
"""

from __future__ import annotations

import re as _stdlib_re

from repro.errors import ParseError
from repro.regex.ast import (
    ANY,
    Concat,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    optional,
    plus,
    repeat,
    star,
    union,
)

_TOKEN_PATTERN = _stdlib_re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<LABEL>[A-Za-z][A-Za-z0-9_]*)
  | (?P<QUOTED>'(?:[^'\\]|\\.)*')
  | (?P<REPEAT>\{\s*\d+\s*(?:,\s*\d*\s*)?\})
  | (?P<NOTSET>!\{)
  | (?P<EPS>ε|<eps>)
  | (?P<UNDERSCORE>_)
  | (?P<OP>[().,+|*?}])
""",
    _stdlib_re.VERBOSE,
)

_ATOM_STARTERS = {"LABEL", "QUOTED", "NOTSET", "EPS", "UNDERSCORE"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind != "WS":
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], normalize: bool = True):
        self._tokens = tokens
        self._index = 0
        self._normalize = normalize

    # -- AST building --------------------------------------------------
    def _mk_concat(self, parts: list[Regex]) -> Regex:
        if self._normalize:
            return concat(*parts)
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _mk_union(self, parts: list[Regex]) -> Regex:
        if self._normalize:
            return union(*parts)
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    def _mk_star(self, inner: Regex) -> Regex:
        return star(inner) if self._normalize else Star(inner)

    def _mk_optional(self, inner: Regex) -> Regex:
        return optional(inner) if self._normalize else Union((inner, Epsilon()))

    def _mk_plus(self, inner: Regex) -> Regex:
        return plus(inner) if self._normalize else Concat((inner, Star(inner)))

    # -- token helpers -------------------------------------------------
    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        token = self._peek()
        if token is None or token[1] != value:
            found = token[1] if token else "end of input"
            raise ParseError(f"expected {value!r}, found {found!r}")
        self._index += 1

    def _atom_follows(self) -> bool:
        token = self._peek()
        return token is not None and (
            token[0] in _ATOM_STARTERS or token[1] == "("
        )

    # -- grammar -------------------------------------------------------
    def parse(self) -> Regex:
        result = self.union()
        token = self._peek()
        if token is not None:
            raise ParseError(f"trailing input starting at {token[1]!r}")
        return result

    def union(self) -> Regex:
        parts = [self.concatenation()]
        while True:
            token = self._peek()
            if token is None or token[1] not in ("+", "|"):
                break
            self._index += 1
            parts.append(self.concatenation())
        return self._mk_union(parts)

    def concatenation(self) -> Regex:
        parts = [self.postfix()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token[1] == ".":
                self._index += 1
                parts.append(self.postfix())
            elif self._atom_follows():
                parts.append(self.postfix())
            else:
                break
        return self._mk_concat(parts)

    def postfix(self) -> Regex:
        result = self.atom()
        while True:
            token = self._peek()
            if token is None:
                break
            kind, value = token
            if value == "*":
                self._index += 1
                result = self._mk_star(result)
            elif value == "?":
                self._index += 1
                result = self._mk_optional(result)
            elif value == "+" and not self._atom_follows_after_plus():
                self._index += 1
                result = self._mk_plus(result)
            elif kind == "REPEAT":
                self._index += 1
                result = self._apply_repeat(result, value)
            else:
                break
        return result

    def _atom_follows_after_plus(self) -> bool:
        """Disambiguate infix union from postfix plus by one-token lookahead."""
        if self._index + 1 < len(self._tokens):
            kind, value = self._tokens[self._index + 1]
            return kind in _ATOM_STARTERS or value == "("
        return False

    def _apply_repeat(self, inner: Regex, text: str) -> Regex:
        body = text.strip("{} \t")
        if "," in body:
            low_text, high_text = body.split(",", 1)
            low = int(low_text)
            high = int(high_text) if high_text.strip() else None
        else:
            low = high = int(body)
        if low < 0 or (high is not None and high < low):
            raise ParseError(f"invalid repetition bounds {{{low},{high}}}")
        if self._normalize:
            return repeat(inner, low, high)
        required: list[Regex] = [inner] * low
        if high is None:
            required.append(Star(inner))
            return self._mk_concat(required or [Epsilon()])
        tail: Regex = Epsilon()
        for _ in range(high - low):
            tail = Union((Concat((inner, tail)) if not isinstance(tail, Epsilon) else inner, Epsilon()))
        if required:
            return self._mk_concat(required + [tail])
        return tail

    def atom(self) -> Regex:
        kind, value = self._next()
        if kind == "LABEL":
            return Symbol(value)
        if kind == "QUOTED":
            return Symbol(value[1:-1].replace("\\'", "'").replace("\\\\", "\\"))
        if kind == "EPS":
            return Epsilon()
        if kind == "UNDERSCORE":
            return ANY
        if kind == "NOTSET":
            return self._not_set()
        if value == "(":
            inner = self.union()
            self._expect(")")
            return inner
        raise ParseError(f"unexpected token {value!r}")

    def _not_set(self) -> Regex:
        excluded: set[str] = set()
        while True:
            kind, value = self._next()
            if kind == "LABEL":
                excluded.add(value)
            elif kind == "QUOTED":
                excluded.add(value[1:-1])
            else:
                raise ParseError(f"expected a label inside !{{...}}, found {value!r}")
            kind, value = self._next()
            if value == "}":
                return NotSymbols(frozenset(excluded))
            if value != ",":
                raise ParseError(f"expected ',' or '}}' in !{{...}}, found {value!r}")


def parse_regex(text: str, normalize: bool = True) -> Regex:
    """Parse an RPQ regular expression from its textual form.

    With ``normalize=True`` (the default) the smart constructors apply their
    safe simplifications while parsing — e.g. ``(((a*)*)*)*`` comes back as
    ``a*``.  Pass ``normalize=False`` to keep the syntax tree verbatim; the
    bag-semantics counter of Section 6.1 needs the raw tree because its
    multiplicities are syntax-dependent (that is the whole point of the
    anecdote).

    Examples from the paper::

        parse_regex("Transfer*")                  # Example 12
        parse_regex("Transfer . Transfer?")       # Example 13
        parse_regex("(((a*)*)*)*", normalize=False)  # Section 6.1
        parse_regex("(l.l)*")                     # Proposition 22
    """
    return _Parser(_tokenize(text), normalize=normalize).parse()
