"""Brzozowski-derivative matching.

An automaton-free regular expression matcher used throughout the test suite
as an *independent oracle* against the Glushkov/NFA pipeline: the derivative
of ``R`` by a symbol ``a`` is an expression matching exactly the words ``w``
with ``aw`` in ``L(R)``, so ``w ∈ L(R)`` iff the derivative by every symbol
of ``w`` in turn yields a nullable expression.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import lru_cache

from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    SymbolType,
    Union,
    concat,
    nullable,
    star,
    union,
)


@lru_cache(maxsize=None)
def derivative(regex: Regex, symbol: SymbolType) -> Regex:
    """The Brzozowski derivative of ``regex`` with respect to ``symbol``."""
    if isinstance(regex, (Empty, Epsilon)):
        return Empty()
    if isinstance(regex, Symbol):
        return Epsilon() if regex.symbol == symbol else Empty()
    if isinstance(regex, NotSymbols):
        return Empty() if symbol in regex.excluded else Epsilon()
    if isinstance(regex, Union):
        return union(*(derivative(part, symbol) for part in regex.parts))
    if isinstance(regex, Concat):
        head, *tail = regex.parts
        rest = concat(*tail)
        with_head = concat(derivative(head, symbol), rest)
        if nullable(head):
            return union(with_head, derivative(rest, symbol))
        return with_head
    if isinstance(regex, Star):
        return concat(derivative(regex.inner, symbol), star(regex.inner))
    raise TypeError(f"not a regex node: {regex!r}")


def derivative_matches(regex: Regex, word: Iterable[SymbolType]) -> bool:
    """Whether ``word`` (an iterable of symbols) belongs to ``L(regex)``."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return False
    return nullable(current)
