"""CRPQ abstract syntax (Section 3.1.2).

A CRPQ is ``q(x1, ..., xk) :- R1(y1, y1'), ..., Rn(yn, yn')`` where each
``Ri`` is an RPQ and every head variable occurs in some atom.  Following
footnote 3 of the paper we generalize atom terms to be either variables or
graph-node constants.

The textual syntax accepted by :func:`parse_crpq` mirrors the paper::

    q(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)
    q(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), (Transfer.Transfer?)(x, y)

Terms starting with a letter are variables; quoted terms (``"a3"``) are node
constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion

from repro.errors import ParseError, QueryError
from repro.regex.ast import Regex
from repro.regex.parser import parse_regex


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable, distinct from any node constant."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = TypingUnion[Var, object]


@dataclass(frozen=True, slots=True)
class RPQAtom:
    """An atom ``R(left, right)``: an RPQ between two terms."""

    regex: Regex
    left: Term
    right: Term

    def variables(self) -> frozenset[Var]:
        found = set()
        if isinstance(self.left, Var):
            found.add(self.left)
        if isinstance(self.right, Var):
            found.add(self.right)
        return frozenset(found)


@dataclass(frozen=True, slots=True)
class CRPQ:
    """A conjunctive regular path query with head and body."""

    head: tuple[Var, ...]
    atoms: tuple[RPQAtom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        body_vars: set[Var] = set()
        for atom in self.atoms:
            body_vars |= atom.variables()
        missing = [var for var in self.head if var not in body_vars]
        if missing:
            raise QueryError(
                f"head variables {missing!r} do not occur in the body "
                "(condition 3 of the CRPQ definition)"
            )

    def variables(self) -> frozenset[Var]:
        found: set[Var] = set()
        for atom in self.atoms:
            found |= atom.variables()
        return frozenset(found)

    @property
    def arity(self) -> int:
        return len(self.head)

    def is_boolean(self) -> bool:
        return not self.head


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _split_top_level(text: str, separator: str) -> list[str]:
    """Split on ``separator`` outside (), {} and quotes."""
    parts: list[str] = []
    depth = 0
    in_quote = False
    current: list[str] = []
    for char in text:
        if in_quote:
            current.append(char)
            if char == "'" or char == '"':
                in_quote = False
            continue
        if char in "'\"":
            in_quote = True
            current.append(char)
        elif char in "({":
            depth += 1
            current.append(char)
        elif char in ")}":
            depth -= 1
            current.append(char)
        elif char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _parse_term(text: str) -> Term:
    text = text.strip()
    if not text:
        raise ParseError("empty term")
    if text[0] in "'\"":
        if len(text) < 2 or text[-1] != text[0]:
            raise ParseError(f"unterminated constant {text!r}")
        return text[1:-1]
    return Var(text)


def parse_atom(text: str) -> RPQAtom:
    """Parse one atom ``REGEX(term, term)``.

    The term pair is the final parenthesized group; everything before it is
    the regular expression.
    """
    text = text.strip()
    if not text.endswith(")"):
        raise ParseError(f"atom {text!r} does not end with a term list")
    depth = 0
    open_index = None
    for index in range(len(text) - 1, -1, -1):
        char = text[index]
        if char == ")":
            depth += 1
        elif char == "(":
            depth -= 1
            if depth == 0:
                open_index = index
                break
    if open_index is None:
        raise ParseError(f"unbalanced parentheses in atom {text!r}")
    regex_text = text[:open_index].strip()
    terms_text = text[open_index + 1 : -1]
    terms = _split_top_level(terms_text, ",")
    if len(terms) != 2:
        raise ParseError(f"atom {text!r} must have exactly two terms")
    if not regex_text:
        raise ParseError(f"atom {text!r} is missing its regular expression")
    return RPQAtom(
        regex=parse_regex(regex_text),
        left=_parse_term(terms[0]),
        right=_parse_term(terms[1]),
    )


def parse_crpq(text: str) -> CRPQ:
    """Parse a Datalog-style CRPQ (see module docstring for the syntax)."""
    if ":-" not in text:
        raise ParseError("a CRPQ needs a ':-' between head and body")
    head_text, body_text = text.split(":-", 1)
    head_text = head_text.strip()
    if not head_text.endswith(")") or "(" not in head_text:
        raise ParseError(f"malformed head {head_text!r}")
    name, args_text = head_text.split("(", 1)
    name = name.strip() or "q"
    args_text = args_text[:-1].strip()
    if args_text:
        head_vars = []
        for part in _split_top_level(args_text, ","):
            term = _parse_term(part)
            if not isinstance(term, Var):
                raise ParseError("head terms must be variables")
            head_vars.append(term)
    else:
        head_vars = []
    atoms = [
        parse_atom(part)
        for part in _split_top_level(body_text.strip(), ",")
        if part.strip()
    ]
    if not atoms:
        raise ParseError("a CRPQ needs at least one atom")
    return CRPQ(head=tuple(head_vars), atoms=tuple(atoms), name=name)
