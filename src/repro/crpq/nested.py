"""Nested CRPQs / regular queries (Section 3.1.3, Examples 14-15, [97]).

CRPQs are not compositional: a binary CRPQ defines *virtual edges*, but a
plain CRPQ cannot take the Kleene closure of those.  Nested CRPQs fix this
by allowing binary CRPQs wherever an edge label may appear in an RPQ.

Implementation: a :class:`VirtualLabel` wraps a binary CRPQ (which may
itself use virtual labels, to any nesting depth).  Evaluation proceeds
bottom-up — each virtual label's pair relation is materialized and added to
(a copy of) the graph as fresh edges carrying the virtual label, after
which the outer query is an ordinary CRPQ.  This is exactly the semantics
of Example 15::

    q2(u, v) :- ((Transfer(x, y), Transfer(y, x))[x, y])* (u, v)

where the starred subexpression ranges over the virtual edges defined by q1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crpq.ast import CRPQ
from repro.crpq.evaluation import evaluate_crpq
from repro.errors import QueryError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import Regex, symbols


@dataclass(frozen=True, slots=True)
class VirtualLabel:
    """A virtual edge label defined by a binary CRPQ.

    ``query`` must have exactly two head variables; the virtual edges are
    the pairs it returns.  Instances are used as ``Symbol`` payloads inside
    RPQ expressions of an outer (nested) CRPQ.
    """

    name: str
    query: CRPQ

    def __post_init__(self) -> None:
        if len(self.query.head) != 2:
            raise QueryError(
                f"virtual label {self.name!r} needs a binary query, "
                f"got arity {len(self.query.head)}"
            )

    def __repr__(self) -> str:
        return f"<virtual {self.name}>"


def _virtual_labels_in(regex: Regex) -> list[VirtualLabel]:
    return [symbol for symbol in symbols(regex) if isinstance(symbol, VirtualLabel)]


def expand_virtual_labels(
    query: CRPQ, graph: EdgeLabeledGraph
) -> EdgeLabeledGraph:
    """Materialize every virtual label used by ``query`` into a graph copy.

    Inner queries are evaluated recursively (they may use virtual labels
    themselves), their pair relations become fresh edges labeled by the
    :class:`VirtualLabel` object itself — object identity keeps virtual
    labels disjoint from ordinary ones.
    """
    virtuals: dict[VirtualLabel, None] = {}
    for atom in query.atoms:
        for virtual in _virtual_labels_in(atom.regex):
            virtuals.setdefault(virtual)
    if not virtuals:
        return graph

    extended = EdgeLabeledGraph()
    for node in graph.iter_nodes():
        extended.add_node(node)
    for edge in graph.iter_edges():
        src, tgt = graph.endpoints(edge)
        extended.add_edge(edge, src, tgt, graph.label(edge))
    for virtual in virtuals:
        pairs = evaluate_nested_crpq(virtual.query, graph)
        for index, (source, target) in enumerate(sorted(pairs, key=repr)):
            extended.add_edge(
                ("__virtual__", virtual.name, index), source, target, virtual
            )
    return extended


def evaluate_nested_crpq(query: CRPQ, graph: EdgeLabeledGraph) -> set[tuple]:
    """Evaluate a nested CRPQ (a CRPQ whose expressions may mention
    :class:`VirtualLabel` symbols) bottom-up."""
    extended = expand_virtual_labels(query, graph)
    return evaluate_crpq(query, extended)
