"""Conjunctive regular path queries (Sections 3.1.2–3.1.3).

* :mod:`~repro.crpq.ast` — CRPQ syntax (atoms, variables, constants) and a
  Datalog-ish parser;
* :mod:`~repro.crpq.evaluation` — node-homomorphism semantics via joins of
  RPQ relations, with sideways information passing;
* :mod:`~repro.crpq.planning` — cardinality estimation and greedy join
  ordering (the Section 7.1 "relational algebra over pattern matching"
  optimization surface);
* :mod:`~repro.crpq.nested` — nested CRPQs / regular queries [97]
  (Examples 14–15): binary CRPQs used as virtual edge labels, closable
  under Kleene star.
"""

from repro.crpq.ast import CRPQ, RPQAtom, Var, parse_crpq
from repro.crpq.evaluation import evaluate_crpq
from repro.crpq.planning import estimate_atom_cardinality, greedy_plan
from repro.crpq.nested import VirtualLabel, evaluate_nested_crpq
from repro.crpq.regular_queries import (
    RegularQuery,
    evaluate_regular_query,
    parse_regular_query,
)

__all__ = [
    "CRPQ",
    "RPQAtom",
    "Var",
    "parse_crpq",
    "evaluate_crpq",
    "greedy_plan",
    "estimate_atom_cardinality",
    "VirtualLabel",
    "evaluate_nested_crpq",
    "RegularQuery",
    "parse_regular_query",
    "evaluate_regular_query",
]
