"""Join planning for CRPQs.

Section 7.1 of the paper singles out cardinality estimation for (C)RPQs as
an open practical problem.  We implement a deliberately simple, documented
estimator over per-label statistics plus a greedy bound-variables-first
ordering — enough to make the evaluator's sideways information passing
effective, and a natural ablation target for the benchmarks.
"""

from __future__ import annotations

from repro.crpq.ast import CRPQ, RPQAtom, Var
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    Union,
    nullable,
)


def label_statistics(graph: EdgeLabeledGraph) -> dict:
    """Per-label edge counts (the only statistics the estimator uses)."""
    counts: dict = {}
    for edge in graph.iter_edges():
        label = graph.label(edge)
        counts[label] = counts.get(label, 0) + 1
    return counts


def estimate_atom_cardinality(
    atom: RPQAtom, graph: EdgeLabeledGraph, stats: dict | None = None
) -> float:
    """A rough estimate of ``|[[R]]_G|`` for the atom's expression.

    Heuristics (all capped at ``n^2``):

    * a label contributes its edge count;
    * a wildcard contributes the count of all non-excluded labels;
    * union adds, concatenation multiplies scaled by ``1/n`` (midpoint
      join), star behaves like reachability and is charged ``n * avg_deg``;
    * a nullable expression adds the ``n`` identity pairs.

    Constants in the atom divide the estimate by ``n`` per bound side.
    """
    if stats is None:
        stats = label_statistics(graph)
    n = max(graph.num_nodes, 1)
    total_edges = max(graph.num_edges, 1)

    def estimate(regex: Regex) -> float:
        if isinstance(regex, Empty):
            return 0.0
        if isinstance(regex, Epsilon):
            return float(n)
        if isinstance(regex, Symbol):
            return float(stats.get(regex.symbol, 0))
        if isinstance(regex, NotSymbols):
            return float(
                sum(
                    count
                    for label, count in stats.items()
                    if label not in regex.excluded
                )
            )
        if isinstance(regex, Union):
            return min(float(n) * n, sum(estimate(part) for part in regex.parts))
        if isinstance(regex, Concat):
            result = estimate(regex.parts[0])
            for part in regex.parts[1:]:
                result = result * estimate(part) / n
            return min(float(n) * n, result)
        if isinstance(regex, Star):
            average_degree = total_edges / n
            reach = n * min(float(n), max(average_degree, 1.0) ** 2)
            return min(float(n) * n, reach)
        raise TypeError(f"not a regex node: {regex!r}")

    size = estimate(atom.regex)
    if nullable(atom.regex):
        size += n
    size = min(size, float(n) * n)
    for term in (atom.left, atom.right):
        if not isinstance(term, Var):
            size /= n
    return max(size, 0.0)


def greedy_plan(
    query: CRPQ, graph: EdgeLabeledGraph
) -> list[RPQAtom]:
    """Order atoms so that each one shares variables with what came before.

    Greedy: start with the atom of smallest estimated cardinality, then
    repeatedly pick the connected atom (sharing a bound variable) with the
    smallest estimate, falling back to the globally smallest when the query
    is disconnected (a cartesian product is then unavoidable).
    """
    stats = label_statistics(graph)
    remaining = list(query.atoms)
    estimates = {
        id(atom): estimate_atom_cardinality(atom, graph, stats)
        for atom in remaining
    }
    plan: list[RPQAtom] = []
    bound: set[Var] = set()
    while remaining:
        connected = [
            atom for atom in remaining if atom.variables() & bound
        ]
        candidates = connected or remaining
        best = min(candidates, key=lambda atom: (estimates[id(atom)], repr(atom)))
        plan.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return plan
