"""Join planning for CRPQs.

Section 7.1 of the paper singles out cardinality estimation for (C)RPQs as
an open practical problem.  Two planners implement it here:

* :func:`greedy_plan` — the seed's planner: a static per-atom estimate plus
  a greedy connected-atoms-first ordering.  Kept verbatim as the
  ``planner="greedy"`` fallback and the differential oracle.
* :func:`cost_plan` — the engine-backed planner (``planner="cost"``, the
  default): prices every candidate atom with the
  :class:`~repro.engine.cardinality.CardinalityModel` *given the variables
  already bound by the plan so far*, so an atom whose endpoint becomes
  bound is re-priced as cheap forward/backward reachability instead of a
  full-relation sweep.  Estimates use the label index's per-label edge and
  distinct-endpoint counts plus the first/last-label selectivity of the
  compiled automaton (compiled through the engine's LRU cache, so planning
  warms the very automata evaluation will run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crpq.ast import CRPQ, RPQAtom, Var
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    NotSymbols,
    Regex,
    Star,
    Symbol,
    Union,
    nullable,
    to_string,
)


def atom_text(atom: RPQAtom) -> str:
    """``regex(left, right)`` with variables rendered as ``?name``."""
    return f"{to_string(atom.regex)}({atom.left!r}, {atom.right!r})"


def label_statistics(graph: EdgeLabeledGraph) -> dict:
    """Per-label edge counts (the only statistics the estimator uses)."""
    counts: dict = {}
    for edge in graph.iter_edges():
        label = graph.label(edge)
        counts[label] = counts.get(label, 0) + 1
    return counts


def estimate_atom_cardinality(
    atom: RPQAtom, graph: EdgeLabeledGraph, stats: dict | None = None
) -> float:
    """A rough estimate of ``|[[R]]_G|`` for the atom's expression.

    Heuristics (all capped at ``n^2``):

    * a label contributes its edge count;
    * a wildcard contributes the count of all non-excluded labels;
    * union adds, concatenation multiplies scaled by ``1/n`` (midpoint
      join), star behaves like reachability and is charged ``n * avg_deg``;
    * a nullable expression adds the ``n`` identity pairs.

    Constants in the atom divide the estimate by ``n`` per bound side.
    """
    if stats is None:
        stats = label_statistics(graph)
    n = max(graph.num_nodes, 1)
    total_edges = max(graph.num_edges, 1)

    def estimate(regex: Regex) -> float:
        if isinstance(regex, Empty):
            return 0.0
        if isinstance(regex, Epsilon):
            return float(n)
        if isinstance(regex, Symbol):
            return float(stats.get(regex.symbol, 0))
        if isinstance(regex, NotSymbols):
            return float(
                sum(
                    count
                    for label, count in stats.items()
                    if label not in regex.excluded
                )
            )
        if isinstance(regex, Union):
            return min(float(n) * n, sum(estimate(part) for part in regex.parts))
        if isinstance(regex, Concat):
            result = estimate(regex.parts[0])
            for part in regex.parts[1:]:
                result = result * estimate(part) / n
            return min(float(n) * n, result)
        if isinstance(regex, Star):
            average_degree = total_edges / n
            reach = n * min(float(n), max(average_degree, 1.0) ** 2)
            return min(float(n) * n, reach)
        raise TypeError(f"not a regex node: {regex!r}")

    size = estimate(atom.regex)
    if nullable(atom.regex):
        size += n
    size = min(size, float(n) * n)
    for term in (atom.left, atom.right):
        if not isinstance(term, Var):
            size /= n
    return max(size, 0.0)


def greedy_plan(
    query: CRPQ, graph: EdgeLabeledGraph
) -> list[RPQAtom]:
    """Order atoms so that each one shares variables with what came before.

    Greedy: start with the atom of smallest estimated cardinality, then
    repeatedly pick the connected atom (sharing a bound variable) with the
    smallest estimate, falling back to the globally smallest when the query
    is disconnected (a cartesian product is then unavoidable).
    """
    stats = label_statistics(graph)
    remaining = list(query.atoms)
    estimates = {
        id(atom): estimate_atom_cardinality(atom, graph, stats)
        for atom in remaining
    }
    plan: list[RPQAtom] = []
    bound: set[Var] = set()
    while remaining:
        connected = [
            atom for atom in remaining if atom.variables() & bound
        ]
        candidates = connected or remaining
        best = min(candidates, key=lambda atom: (estimates[id(atom)], repr(atom)))
        plan.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return plan


def cost_plan(
    query: CRPQ,
    graph: EdgeLabeledGraph,
    *,
    stats=None,
) -> list[RPQAtom]:
    """Order atoms by estimated access cost with bound-variable propagation.

    At every step each remaining atom is priced by
    :meth:`~repro.engine.cardinality.CardinalityModel.access_cost` under the
    variables the partial plan already binds: a term is *bound* if it is a
    constant or a variable some earlier atom produced.  The cheapest atom is
    appended and its variables join the bound set, so estimates tighten as
    the plan grows (classic greedy join ordering with sideways information
    passing).  Ties break on ``repr`` for determinism.
    """
    from repro.engine import kernel
    from repro.engine.cardinality import CardinalityModel

    model = CardinalityModel(graph, stats)
    compiled = {
        id(atom): kernel.compile_query(atom.regex, graph, stats=stats)
        for atom in query.atoms
    }

    def term_bound(term, bound: set[Var]) -> bool:
        return not isinstance(term, Var) or term in bound

    plan: list[RPQAtom] = []
    bound: set[Var] = set()
    remaining = list(query.atoms)
    while remaining:
        best = min(
            remaining,
            key=lambda atom: (
                model.access_cost(
                    compiled[id(atom)],
                    left_bound=term_bound(atom.left, bound),
                    right_bound=term_bound(atom.right, bound),
                ),
                repr(atom),
            ),
        )
        plan.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return plan


@dataclass(frozen=True, slots=True)
class PlanStep:
    """One priced step of an ordered CRPQ plan (what ``repro explain`` shows).

    ``estimated_cost`` is the expected number of bindings one access to the
    atom's relation produces under the bound-variable state at this point of
    the plan; ``estimated_pairs`` is the cardinality estimate of the atom's
    full relation ``|[[R]]_G|``.  The per-atom spans recorded during
    evaluation carry these estimates next to the *actual* cardinality, so
    plan quality is auditable after the fact.
    """

    atom: RPQAtom
    access: str
    estimated_cost: float
    estimated_pairs: float
    left_bound: bool
    right_bound: bool

    @property
    def atom_text(self) -> str:
        return atom_text(self.atom)

    def as_dict(self) -> dict:
        return {
            "atom": self.atom_text,
            "access": self.access,
            "estimated_cost": round(self.estimated_cost, 4),
            "estimated_pairs": round(self.estimated_pairs, 4),
        }


def _access_name(left_bound: bool, right_bound: bool) -> str:
    if left_bound and right_bound:
        return "check"
    if left_bound:
        return "forward"
    if right_bound:
        return "backward"
    return "full"


def explain_steps(
    ordered: list[RPQAtom],
    graph: EdgeLabeledGraph,
    *,
    stats=None,
) -> list[PlanStep]:
    """Price an already-ordered plan step by step.

    Replays the bound-variable propagation of :func:`cost_plan` over any
    atom order (cost-chosen, greedy, or user-supplied), so estimates are
    comparable across planners.  Compilation goes through the engine's LRU
    cache — explaining a plan warms the very automata evaluation will run.
    """
    from repro.engine import kernel
    from repro.engine.cardinality import CardinalityModel

    model = CardinalityModel(graph, stats)
    steps: list[PlanStep] = []
    bound: set[Var] = set()
    for atom in ordered:
        left_bound = not isinstance(atom.left, Var) or atom.left in bound
        right_bound = not isinstance(atom.right, Var) or atom.right in bound
        compiled = kernel.compile_query(atom.regex, graph, stats=stats)
        steps.append(
            PlanStep(
                atom=atom,
                access=_access_name(left_bound, right_bound),
                estimated_cost=model.access_cost(
                    compiled, left_bound=left_bound, right_bound=right_bound
                ),
                estimated_pairs=model.pair_estimate(compiled),
                left_bound=left_bound,
                right_bound=right_bound,
            )
        )
        bound |= atom.variables()
    return steps


#: Planner registry used by ``evaluate_crpq(..., planner=...)``.
PLANNERS = {
    "greedy": greedy_plan,
    "cost": cost_plan,
}


def make_plan(
    query: CRPQ,
    graph: EdgeLabeledGraph,
    planner: str = "cost",
    *,
    stats=None,
) -> list[RPQAtom]:
    """Dispatch to a named planner (``"cost"`` or ``"greedy"``)."""
    if planner == "cost":
        return cost_plan(query, graph, stats=stats)
    if planner == "greedy":
        return greedy_plan(query, graph)
    raise ValueError(
        f"unknown planner {planner!r}; expected one of {sorted(PLANNERS)}"
    )
