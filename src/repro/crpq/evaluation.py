"""CRPQ evaluation: joins of RPQ relations (Section 3.1.2).

``q(G) = { h(x1, ..., xk) | h is a node homomorphism from q to G }``.

The evaluator processes atoms in the order chosen by
:mod:`repro.crpq.planning`, maintaining a set of partial bindings (a
relation over the variables seen so far).  Per atom it picks the cheapest
access path:

* left term bound  -> forward reachability from the bound node;
* right term bound -> reachability of the *reversed* expression over the
  reversed graph (Section 6.2's product construction runs equally well
  backwards);
* neither bound    -> the full ``[[R]]_G`` relation.

Reachability calls are memoized per (expression, start), so star-shaped
joins do not recompute the same BFS.
"""

from __future__ import annotations

from itertools import islice

from repro.crpq.ast import CRPQ, RPQAtom, Var
from repro.crpq.planning import explain_steps, greedy_plan, make_plan
from repro.engine.index import get_reversed
from repro.engine.limits import BudgetExceeded
from repro.engine.tracing import get_tracer
from repro.graph.edge_labeled import EdgeLabeledGraph, ObjectId
from repro.regex.ast import reverse as regex_reverse
from repro.rpq.evaluation import compile_for_graph, evaluate_rpq, reachable_by_rpq


class _AtomAccess:
    """Memoized access paths for one evaluation run.

    With ``use_index=True`` compilation additionally goes through the
    engine's process-wide LRU cache (keyed on the *alphabet*, so a graph
    mutated between runs never resurrects a stale wildcard automaton) and
    reachability runs on the label index.
    """

    def __init__(
        self,
        graph: EdgeLabeledGraph,
        use_index: bool = True,
        stats=None,
        budget=None,
        use_csr: bool = True,
    ):
        self.graph = graph
        self.use_index = use_index
        self.use_csr = use_csr
        self.stats = stats
        # Atom relations are *intermediate* results: they share the query's
        # deadline/cancellation but are exempt from its answer-row ceiling.
        self.budget = budget.subquery() if budget is not None else None
        self.reversed_graph = None
        self._forward: dict = {}
        self._backward: dict = {}
        self._full: dict = {}
        self._nfa_cache: dict = {}

    def _nfa(self, regex, graph, direction: str):
        # Keyed on (expression, access direction, graph version) — never on
        # ``id(graph)``: a garbage-collected graph can recycle its id and
        # resurrect a stale automaton compiled over a different alphabet.
        key = (regex, direction, graph.version)
        if key not in self._nfa_cache:
            self._nfa_cache[key] = compile_for_graph(
                regex, graph, cached=self.use_index, stats=self.stats
            )
        return self._nfa_cache[key]

    def forward(self, regex, source: ObjectId) -> set[ObjectId]:
        key = (regex, source)
        if key not in self._forward:
            self._forward[key] = reachable_by_rpq(
                self._nfa(regex, self.graph, "forward"),
                self.graph,
                source,
                use_index=self.use_index,
                use_csr=self.use_csr,
                stats=self.stats,
                budget=self.budget,
            )
        return self._forward[key]

    def backward(self, regex, target: ObjectId) -> set[ObjectId]:
        key = (regex, target)
        if key not in self._backward:
            if self.reversed_graph is None:
                # Indexed runs share one reversed copy per graph version
                # across every evaluation (and every batch worker); the
                # naive oracle keeps the seed's build-per-run behaviour.
                if self.use_index:
                    self.reversed_graph = get_reversed(self.graph, self.stats)
                else:
                    self.reversed_graph = self.graph.reversed_copy()
            reversed_regex = regex_reverse(regex)
            self._backward[key] = reachable_by_rpq(
                self._nfa(reversed_regex, self.reversed_graph, "backward"),
                self.reversed_graph,
                target,
                use_index=self.use_index,
                use_csr=self.use_csr,
                stats=self.stats,
                budget=self.budget,
            )
        return self._backward[key]

    def full(self, regex) -> set[tuple[ObjectId, ObjectId]]:
        # The unbound-atom hot path: with use_index=True this is the
        # kernel's one-sweep multi-source evaluation of ``[[R]]_G``.
        if regex not in self._full:
            self._full[regex] = evaluate_rpq(
                regex, self.graph, use_index=self.use_index,
                use_csr=self.use_csr, stats=self.stats, budget=self.budget,
            )
        return self._full[regex]


def _resolve(term, binding: dict) -> "ObjectId | None":
    """The node a term denotes under the binding, or None if still free."""
    if isinstance(term, Var):
        return binding.get(term)
    return term


def _extend(
    binding: dict, term, node: ObjectId
) -> "dict | None":
    """Bind ``term`` to ``node`` if consistent; constants must match."""
    if isinstance(term, Var):
        bound = binding.get(term)
        if bound is None:
            extended = dict(binding)
            extended[term] = node
            return extended
        return binding if bound == node else None
    return binding if term == node else None


def evaluate_crpq_bindings(
    query: "CRPQ | str",
    graph: EdgeLabeledGraph,
    plan: "list[RPQAtom] | None" = None,
    *,
    use_index: bool = True,
    use_csr: bool = True,
    planner: "str | None" = None,
    stats=None,
    budget=None,
    access=None,
) -> list[dict]:
    """All node homomorphisms from ``query`` to ``graph`` as variable->node
    dictionaries (before head projection).

    ``access`` swaps in an alternative atom-access object (the distributed
    coordinator injects one that evaluates each relation on the shard
    fleet); planning still runs over ``graph``, so the cost model keeps
    choosing the atom order — and thereby which atoms run bound
    (shard-local scatter) versus unbound (broadcast sweep).

    ``planner`` selects the atom ordering: ``"cost"`` (the engine's
    cardinality-model planner, default on indexed runs) or ``"greedy"``
    (the seed planner, default for the ``use_index=False`` oracle).  An
    explicit ``plan`` overrides both.

    A ``budget`` bounds the whole join: atom reachability calls run under
    ``budget.subquery()`` and the join loop itself ticks per extension.  On
    :class:`BudgetExceeded` the bindings completed so far are attached as
    the partial result (callers with a more final answer shape overwrite).

    This is the engine behind :func:`evaluate_crpq`; the l-CRPQ evaluator of
    Section 3.1.5 also starts from these homomorphisms before attaching list
    bindings per atom.
    """
    if isinstance(query, str):
        from repro.crpq.ast import parse_crpq

        query = parse_crpq(query)
    tracer = get_tracer()
    with tracer.span("crpq.evaluate", query=query.name) as query_span:
        with tracer.span("crpq.plan", planner=planner or "default"):
            if plan is not None:
                ordered = plan
            elif planner is not None:
                ordered = make_plan(query, graph, planner, stats=stats)
            elif use_index:
                ordered = make_plan(query, graph, "cost", stats=stats)
            else:
                ordered = greedy_plan(query, graph)
            # When tracing, price the chosen order up front so every
            # per-atom span carries its estimate next to the actual
            # cardinality it produced.
            steps = (
                explain_steps(ordered, graph, stats=stats)
                if tracer.enabled
                else None
            )
        if query_span is not None:
            query_span.set(atoms=len(ordered))
        if access is None:
            access = _AtomAccess(
                graph, use_index=use_index, stats=stats, budget=budget,
                use_csr=use_csr,
            )
        bindings: list[dict] = [{}]
        try:
            for position, atom in enumerate(ordered):
                if budget is not None:
                    budget.check()  # natural barrier between atoms
                attributes = {}
                if steps is not None:
                    step = steps[position]
                    attributes = {
                        "atom": step.atom_text,
                        "access": step.access,
                        "estimated_cost": round(step.estimated_cost, 4),
                        "estimated_pairs": round(step.estimated_pairs, 4),
                    }
                with tracer.span("crpq.atom", **attributes) as atom_span:
                    bindings = _apply_atom(atom, bindings, access, graph, budget)
                    if atom_span is not None:
                        atom_span.set(actual_cardinality=len(bindings))
                if not bindings:
                    break
        except BudgetExceeded as exc:
            raise exc.attach_partial(list(bindings))
        if query_span is not None:
            query_span.set(bindings=len(bindings))
    return bindings


def _apply_atom(
    atom: RPQAtom,
    bindings: list[dict],
    access: _AtomAccess,
    graph: EdgeLabeledGraph,
    budget=None,
) -> list[dict]:
    """Join one atom's relation into the current partial bindings."""
    next_bindings: list[dict] = []
    tick = budget.tick if budget is not None else None
    for binding in bindings:
        if tick is not None:
            tick()
        left = _resolve(atom.left, binding)
        right = _resolve(atom.right, binding)
        if left is not None and graph.has_node(left):
            targets = access.forward(atom.regex, left)
            if right is not None:
                if right in targets:
                    next_bindings.append(binding)
            else:
                for node in targets:
                    if tick is not None:
                        tick()
                    extended = _extend(binding, atom.right, node)
                    if extended is not None:
                        next_bindings.append(extended)
        elif right is not None and graph.has_node(right):
            sources = access.backward(atom.regex, right)
            for node in sources:
                if tick is not None:
                    tick()
                extended = _extend(binding, atom.left, node)
                if extended is not None:
                    next_bindings.append(extended)
        elif left is None and right is None:
            for source, target in access.full(atom.regex):
                if tick is not None:
                    tick()
                extended = _extend(binding, atom.left, source)
                if extended is None:
                    continue
                extended = _extend(extended, atom.right, target)
                if extended is not None:
                    next_bindings.append(extended)
        # else: a bound term is not even a node of the graph -> no match
    return next_bindings


def evaluate_crpq(
    query: "CRPQ | str",
    graph: EdgeLabeledGraph,
    plan: "list[RPQAtom] | None" = None,
    *,
    use_index: bool = True,
    use_csr: bool = True,
    planner: "str | None" = None,
    stats=None,
    budget=None,
    access=None,
) -> set[tuple]:
    """The output ``q(G)`` as a set of head-variable tuples.

    A boolean query (empty head) returns ``{()}`` when satisfiable and
    ``set()`` otherwise.  A custom atom order can be injected via ``plan``;
    ``planner`` picks between the cost-based and greedy orderings (the
    benchmarks and differential tests compare all of them).

    ``budget.max_rows`` applies to these head tuples: the evaluation stops
    once more than ``max_rows`` distinct tuples exist, and the raised
    :class:`BudgetExceeded` carries exactly ``max_rows`` of them.
    """
    if isinstance(query, str):
        from repro.crpq.ast import parse_crpq

        query = parse_crpq(query)
    results: set[tuple] = set()
    try:
        for binding in evaluate_crpq_bindings(
            query, graph, plan=plan, use_index=use_index, use_csr=use_csr,
            planner=planner, stats=stats, budget=budget, access=access,
        ):
            results.add(tuple(binding[var] for var in query.head))
            if budget is not None:
                budget.check_rows(len(results))
    except BudgetExceeded as exc:
        if budget is not None and exc.limit == "max_rows" and budget.max_rows is not None:
            raise exc.attach_partial(set(islice(results, budget.max_rows)))
        raise exc.attach_partial(set(results))
    return results
