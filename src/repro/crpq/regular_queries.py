"""Regular queries in Datalog-like syntax (Section 3.1.3, [97]).

"Reutter et al. introduced an elegant Datalog-like syntax for nested CRPQs
and coined the term regular queries."  A regular query is a non-recursive
Datalog program over binary predicates in which rule bodies may apply
regular expressions — including Kleene star — to *defined* predicates as
well as base edge labels.

Syntax accepted by :func:`parse_regular_query` (``;`` or newlines separate
rules; the last rule's head is the answer predicate unless ``answer=`` is
given)::

    Mutual(x, y)  :- Transfer(x, y), Transfer(y, x)
    Answer(u, v)  :- Mutual*(u, v)

Predicate names may appear anywhere a label may appear inside the regular
expressions of later rules; dependencies must be acyclic (that is what
keeps regular queries decidable and, as the paper notes, exactly captures
binary nested CRPQs).

Evaluation is bottom-up: each defined predicate becomes a
:class:`~repro.crpq.nested.VirtualLabel` whose pairs are materialized in
dependency order, so the whole apparatus reduces to the nested-CRPQ engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crpq.ast import CRPQ, RPQAtom, parse_atom, _split_top_level
from repro.crpq.nested import VirtualLabel, evaluate_nested_crpq
from repro.errors import ParseError, QueryError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.regex.ast import Regex, map_symbols, symbols


@dataclass(frozen=True)
class Rule:
    """One rule: a binary head predicate defined by a CRPQ body."""

    head: str
    query: CRPQ


@dataclass(frozen=True)
class RegularQuery:
    """An ordered, acyclicity-checked program of binary rules."""

    rules: tuple[Rule, ...]
    answer: str

    def __post_init__(self) -> None:
        defined: set[str] = set()
        names = [rule.head for rule in self.rules]
        if len(set(names)) != len(names):
            raise QueryError("each predicate may be defined only once")
        for rule in self.rules:
            for atom in rule.query.atoms:
                for symbol in symbols(atom.regex):
                    if isinstance(symbol, str) and symbol in names:
                        if symbol not in defined:
                            raise QueryError(
                                f"rule {rule.head!r} uses {symbol!r} before "
                                "its definition (regular queries are "
                                "non-recursive)"
                            )
            defined.add(rule.head)
        if self.answer not in defined:
            raise QueryError(f"answer predicate {self.answer!r} is not defined")


def parse_regular_query(text: str, answer: "str | None" = None) -> RegularQuery:
    """Parse a regular-query program (see module docstring)."""
    rule_texts = [
        part.strip()
        for chunk in text.split("\n")
        for part in _split_top_level(chunk, ";")
        if part.strip()
    ]
    rules: list[Rule] = []
    for rule_text in rule_texts:
        if ":-" not in rule_text:
            raise ParseError(f"rule {rule_text!r} is missing ':-'")
        head_text, body_text = rule_text.split(":-", 1)
        head_text = head_text.strip()
        if "(" not in head_text or not head_text.endswith(")"):
            raise ParseError(f"malformed rule head {head_text!r}")
        name, args_text = head_text.split("(", 1)
        name = name.strip()
        head_vars = [
            part.strip() for part in args_text[:-1].split(",") if part.strip()
        ]
        if len(head_vars) != 2:
            raise ParseError(
                f"regular-query predicates are binary; {name!r} has "
                f"{len(head_vars)} arguments"
            )
        atoms = [
            parse_atom(part)
            for part in _split_top_level(body_text.strip(), ",")
            if part.strip()
        ]
        from repro.crpq.ast import Var

        rules.append(
            Rule(
                head=name,
                query=CRPQ(
                    head=(Var(head_vars[0]), Var(head_vars[1])),
                    atoms=tuple(atoms),
                    name=name,
                ),
            )
        )
    if not rules:
        raise ParseError("a regular query needs at least one rule")
    return RegularQuery(
        rules=tuple(rules), answer=answer if answer is not None else rules[-1].head
    )


def _resolve_regex(regex: Regex, virtuals: dict) -> Regex:
    """Replace defined-predicate labels by their VirtualLabel payloads."""

    def resolve(symbol):
        return virtuals.get(symbol, symbol)

    return map_symbols(regex, resolve)


def evaluate_regular_query(
    query: "RegularQuery | str", graph: EdgeLabeledGraph
) -> set[tuple]:
    """Evaluate the answer predicate bottom-up.

    Each rule's regexes have earlier predicates replaced by virtual labels
    and the resulting nested CRPQ is evaluated; its pair relation feeds the
    later rules.
    """
    if isinstance(query, str):
        query = parse_regular_query(query)
    virtuals: dict[str, VirtualLabel] = {}
    answers: dict[str, set[tuple]] = {}
    for rule in query.rules:
        resolved = CRPQ(
            head=rule.query.head,
            atoms=tuple(
                RPQAtom(
                    _resolve_regex(atom.regex, virtuals), atom.left, atom.right
                )
                for atom in rule.query.atoms
            ),
            name=rule.head,
        )
        answers[rule.head] = evaluate_nested_crpq(resolved, graph)
        virtuals[rule.head] = VirtualLabel(rule.head, resolved)
    return answers[query.answer]
