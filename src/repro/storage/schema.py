"""SQLite schema and value encoding for the durable graph store.

One database file (``repro.db``) per data directory holds every graph of a
catalog.  The layout mirrors the property-graph data model (Definition 6 of
the paper, after Angles et al.'s *Foundations of Modern Query Languages for
Graph Databases*): typed node and edge tables plus a property map, with the
graphs-over-relational-tables deployment Gheerbrant & Peterfreund take as
ground truth.

Tables
------

``meta``
    Schema bookkeeping (``schema_version``).
``graphs``
    One manifest row per graph: kind, durable ``version`` (coherent with the
    in-memory ``graph.version`` the answer cache keys on), the version the
    snapshot tables were written at, and snapshot object counts.
``nodes`` / ``edges``
    The snapshot: the full graph state as of the last import or compaction.
    ``edges`` is indexed by ``(graph, label)`` — the unit of lazy segment
    faulting.
``journal``
    The append-only mutation journal.  One row is one *batch* (a JSON array
    of ``[op, payload, version]`` records) so group commit amortizes both
    the JSON encoding and the transaction over many mutations.  Replaying
    ``snapshot ⊕ journal`` in seq order reproduces the live graph; batches
    commit atomically, so a crash leaves a consistent prefix.

Encoding
--------

Ids, labels and values are stored as canonical JSON text (sorted keys, no
whitespace), so any JSON-representable hashable round-trips exactly and
equal values collide in SQL comparisons.  Property maps are stored as JSON
lists of ``[name, value]`` pairs — never JSON objects, whose string-only
keys would silently coerce non-string property names (the same pitfall
``graph/serialize.py`` documents).
"""

from __future__ import annotations

import json
from typing import Any

SCHEMA_VERSION = 1

DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS graphs (
    name             TEXT PRIMARY KEY,
    kind             TEXT NOT NULL,
    version          INTEGER NOT NULL,
    snapshot_version INTEGER NOT NULL,
    nodes            INTEGER NOT NULL,
    edges            INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    graph TEXT NOT NULL,
    id    TEXT NOT NULL,
    label TEXT,
    props TEXT,
    PRIMARY KEY (graph, id)
);
CREATE TABLE IF NOT EXISTS edges (
    graph TEXT NOT NULL,
    id    TEXT NOT NULL,
    src   TEXT NOT NULL,
    tgt   TEXT NOT NULL,
    label TEXT NOT NULL,
    props TEXT,
    PRIMARY KEY (graph, id)
);
CREATE INDEX IF NOT EXISTS edges_by_label ON edges (graph, label);
CREATE TABLE IF NOT EXISTS journal (
    graph       TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    batch       TEXT NOT NULL,
    version     INTEGER NOT NULL,
    records     INTEGER NOT NULL,
    PRIMARY KEY (graph, seq)
);
"""


def encode(value: Any) -> str:
    """Canonical JSON text for an id, label or value column."""
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


def decode(text: str) -> Any:
    return json.loads(text)


def encode_props(props: "dict | None") -> "str | None":
    """Property map -> JSON pair list (``None`` when empty/absent)."""
    if not props:
        return None
    return json.dumps(
        [[name, value] for name, value in props.items()], separators=(",", ":")
    )


def decode_props(text: "str | None") -> "dict | None":
    if text is None:
        return None
    return {name: value for name, value in json.loads(text)}
