"""The durable graph store: snapshots, an append-only journal, compaction.

``GraphStore`` persists :class:`EdgeLabeledGraph` / :class:`PropertyGraph`
instances in one SQLite file (WAL mode) per data directory.  The lifecycle:

* :meth:`put_graph` writes a full **snapshot** (nodes/edges tables) in one
  transaction and clears the graph's journal;
* :meth:`attach` installs a journal sink on a live graph, so in-place
  mutations (``add_edge``, property writes) are captured as records in a
  per-graph buffer;
* :meth:`flush` group-commits buffered records as one journal batch row —
  the durability barrier the server invokes per mutation request and on
  drain.  The mutating thread only pays the in-memory record append; JSON
  encoding and the SQLite transaction are amortized over the batch;
* :meth:`load_graph` rebuilds ``snapshot ⊕ journal`` and stamps the graph
  with the durable version, so answer-cache keys derived from
  ``graph.version`` stay coherent across restarts;
* :meth:`compact` folds the journal back into the snapshot (triggered
  automatically once the journal exceeds ``compact_every`` batches).

Crash safety: a batch commits atomically or not at all, so ``kill -9``
leaves a consistent *prefix* of the mutation history — no torn edges, and
``graphs.version`` (updated in the same transaction as each batch) stays
monotone.  The ``storage.journal_write`` fault site sits before the commit:
an injected failure leaves the buffer intact for retry, proving flush is
all-or-nothing.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Iterable

from repro.engine.faults import fault_point
from repro.errors import StorageError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.property_graph import PropertyGraph
from repro.storage import schema
from repro.storage.schema import decode, decode_props, encode, encode_props

#: Journal ops (the graph layer emits exactly these).
_OPS = ("add_node", "add_edge", "set_property")


def apply_record(graph: EdgeLabeledGraph, op: str, payload: tuple) -> None:
    """Apply one journal record to a live graph (replay path)."""
    if op == "add_edge":
        edge, src, tgt, label, props = payload
        if isinstance(graph, PropertyGraph):
            graph.add_edge(edge, src, tgt, label, properties=props)
        else:
            graph.add_edge(edge, src, tgt, label)
    elif op == "add_node":
        node, label, props = payload
        if isinstance(graph, PropertyGraph):
            graph.add_node(node, label=label, properties=props)
        else:
            graph.add_node(node)
    elif op == "set_property":
        obj, name, value = payload
        graph.set_property(obj, name, value)
    else:  # pragma: no cover - journal corruption guard
        raise StorageError(f"unknown journal op {op!r}")


def _payload_to_json(op: str, payload: tuple) -> list:
    """Journal payload -> JSON-safe list (property dicts become pair lists)."""
    if op == "add_edge":
        edge, src, tgt, label, props = payload
        return [edge, src, tgt, label, _props_to_json(props)]
    if op == "add_node":
        node, label, props = payload
        return [node, label, _props_to_json(props)]
    return list(payload)


def _payload_from_json(op: str, payload: list) -> tuple:
    if op == "add_edge":
        edge, src, tgt, label, props = payload
        return (edge, src, tgt, label, _props_from_json(props))
    if op == "add_node":
        node, label, props = payload
        return (node, label, _props_from_json(props))
    return tuple(payload)


def _props_to_json(props: "dict | None") -> "list | None":
    if not props:
        return None
    return [[name, value] for name, value in props.items()]


def _props_from_json(items: "list | None") -> "dict | None":
    if items is None:
        return None
    return {name: value for name, value in items}


class GraphStore:
    """One SQLite-backed store per data directory (``<data_dir>/repro.db``).

    Thread safety: one connection shared across threads behind an RLock
    (the server's worker pool flushes and reads concurrently).  Journal
    *emission* is deliberately lock-free — ``list.append`` on the per-graph
    buffer — so attached graphs pay near-nothing per mutation; only the
    flush/commit path takes the lock.

    ``data_dir=":memory:"`` backs the store with an in-memory database
    (property-based tests spin up hundreds of stores).
    """

    DB_FILENAME = "repro.db"

    def __init__(
        self,
        data_dir: str,
        *,
        flush_every: int = 1024,
        compact_every: int = 64,
        timeout: float = 30.0,
    ) -> None:
        self.data_dir = data_dir
        #: buffered records reaching this count trigger an automatic flush
        self.flush_every = flush_every
        #: journal batches reaching this count trigger auto-compaction
        self.compact_every = compact_every
        if data_dir == ":memory:":
            self.path = ":memory:"
        else:
            os.makedirs(data_dir, exist_ok=True)
            self.path = os.path.join(data_dir, self.DB_FILENAME)
        self._lock = threading.RLock()
        self._buffers: dict[str, list] = {}
        self._closed = False
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(schema.DDL)
        with self._conn:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta VALUES ('schema_version', ?)",
                    (str(schema.SCHEMA_VERSION),),
                )
            elif int(row[0]) != schema.SCHEMA_VERSION:
                raise StorageError(
                    f"store at {self.path} has schema version {row[0]}, "
                    f"this build expects {schema.SCHEMA_VERSION}"
                )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def put_graph(
        self, name: str, graph: EdgeLabeledGraph, *, _keep_buffer: bool = False
    ) -> dict:
        """Write a full snapshot of ``graph``, replacing any prior state.

        One transaction: manifest row, node rows, edge rows, journal
        cleared.  The durable version is ``graph.version`` verbatim, so a
        later :meth:`load_graph` hands back a graph whose answer-cache key
        matches the one that was stored.

        A replacement also discards any buffered journal records for the
        name (they described the graph being replaced); compaction — where
        concurrently buffered records must survive into the next batch —
        passes ``_keep_buffer=True``.
        """
        is_property = isinstance(graph, PropertyGraph)
        kind = "property" if is_property else "edge_labeled"
        node_rows = []
        for node in graph.iter_nodes():
            if is_property:
                node_rows.append(
                    (
                        name,
                        encode(node),
                        encode(graph.node_label(node)),
                        encode_props(graph.properties(node)),
                    )
                )
            else:
                node_rows.append((name, encode(node), None, None))
        edge_rows = []
        for edge, src, tgt, label in graph.iter_edge_records():
            edge_rows.append(
                (
                    name,
                    encode(edge),
                    encode(src),
                    encode(tgt),
                    encode(label),
                    encode_props(graph.properties(edge)) if is_property else None,
                )
            )
        with self._lock:
            self._check_open()
            if not _keep_buffer:
                buffer = self._buffers.get(name)
                if buffer is not None:
                    buffer.clear()
            with self._conn:
                self._conn.execute("DELETE FROM nodes WHERE graph=?", (name,))
                self._conn.execute("DELETE FROM edges WHERE graph=?", (name,))
                self._conn.execute("DELETE FROM journal WHERE graph=?", (name,))
                self._conn.executemany(
                    "INSERT INTO nodes VALUES (?,?,?,?)", node_rows
                )
                self._conn.executemany(
                    "INSERT INTO edges VALUES (?,?,?,?,?,?)", edge_rows
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO graphs VALUES (?,?,?,?,?,?)",
                    (
                        name,
                        kind,
                        graph.version,
                        graph.version,
                        len(node_rows),
                        len(edge_rows),
                    ),
                )
        return self.graph_info(name)

    def load_graph(self, name: str) -> EdgeLabeledGraph:
        """Rebuild ``snapshot ⊕ journal`` and stamp the durable version."""
        with self._lock:
            self._check_open()
            row = self._manifest_row(name)
            kind, version, _snapshot_version = row[1], row[2], row[3]
            is_property = kind == "property"
            graph: EdgeLabeledGraph = (
                PropertyGraph() if is_property else EdgeLabeledGraph()
            )
            for _, id_, label, props in self._conn.execute(
                "SELECT graph, id, label, props FROM nodes WHERE graph=?", (name,)
            ):
                if is_property:
                    graph.add_node(
                        decode(id_),
                        label=decode(label),
                        properties=decode_props(props),
                    )
                else:
                    graph.add_node(decode(id_))
            for id_, src, tgt, label, props in self._conn.execute(
                "SELECT id, src, tgt, label, props FROM edges WHERE graph=?",
                (name,),
            ):
                if is_property:
                    graph.add_edge(
                        decode(id_),
                        decode(src),
                        decode(tgt),
                        decode(label),
                        properties=decode_props(props),
                    )
                else:
                    graph.add_edge(
                        decode(id_), decode(src), decode(tgt), decode(label)
                    )
            for op, payload, _record_version in self._journal_tail(name):
                apply_record(graph, op, payload)
        # The replayed graph must report the exact durable version: derived
        # caches (answer cache, label index, CSR) key on it across restarts.
        graph._version = version
        return graph

    def delete_graph(self, name: str) -> None:
        with self._lock:
            self._check_open()
            self._manifest_row(name)
            buffer = self._buffers.get(name)
            if buffer is not None:
                buffer.clear()
            with self._conn:
                self._conn.execute("DELETE FROM graphs WHERE name=?", (name,))
                for table in ("nodes", "edges", "journal"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE graph=?", (name,)
                    )

    # ------------------------------------------------------------------
    # manifest / reads
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT name FROM graphs ORDER BY name"
            ).fetchall()
        return [row[0] for row in rows]

    def has_graph(self, name: str) -> bool:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT 1 FROM graphs WHERE name=?", (name,)
            ).fetchone()
        return row is not None

    def graph_info(self, name: str) -> dict:
        """Manifest entry: kind, durable version, exact object counts.

        Snapshot counts are stored; the journal tail is decoded to count the
        net new objects it adds (the tail is bounded by ``compact_every``).
        """
        with self._lock:
            self._check_open()
            row = self._manifest_row(name)
            _, kind, version, snapshot_version, node_count, edge_count = row
            tail = self._journal_tail(name)
            journal_records = len(tail)
            if tail:
                known: set = {
                    decode(r[0])
                    for r in self._conn.execute(
                        "SELECT id FROM nodes WHERE graph=?", (name,)
                    )
                }
                for op, payload, _ in tail:
                    if op == "add_node":
                        if payload[0] not in known:
                            known.add(payload[0])
                            node_count += 1
                    elif op == "add_edge":
                        edge_count += 1
                        for endpoint in (payload[1], payload[2]):
                            if endpoint not in known:
                                known.add(endpoint)
                                node_count += 1
        return {
            "name": name,
            "kind": kind,
            "version": version,
            "snapshot_version": snapshot_version,
            "nodes": node_count,
            "edges": edge_count,
            "journal_records": journal_records,
            "pending_records": len(self._buffers.get(name, ())),
        }

    def manifest(self) -> list[dict]:
        return [self.graph_info(name) for name in self.names()]

    def label_counts(self, name: str) -> dict:
        """Edge count per label (snapshot plus journal tail)."""
        with self._lock:
            self._check_open()
            self._manifest_row(name)
            counts: dict = {}
            for label, count in self._conn.execute(
                "SELECT label, COUNT(*) FROM edges WHERE graph=? GROUP BY label",
                (name,),
            ):
                counts[decode(label)] = count
            for op, payload, _ in self._journal_tail(name):
                if op == "add_edge":
                    label = payload[3]
                    counts[label] = counts.get(label, 0) + 1
        return counts

    def labels(self, name: str) -> frozenset:
        return frozenset(self.label_counts(name))

    def read_nodes(self, name: str) -> list[tuple]:
        """Final ``(id, label, props)`` records: snapshot ⊕ journal refinements.

        Nodes are always fully resident in a lazy handle (they bound the
        reachability questions every query asks), so this applies node-side
        journal effects — new nodes, label refinements, property merges,
        auto-created edge endpoints — without touching edge segments.
        """
        with self._lock:
            self._check_open()
            row = self._manifest_row(name)
            is_property = row[1] == "property"
            nodes: dict = {}
            for id_, label, props in self._conn.execute(
                "SELECT id, label, props FROM nodes WHERE graph=?", (name,)
            ):
                nodes[decode(id_)] = [
                    decode(label) if label is not None else None,
                    decode_props(props),
                ]
            default_label = PropertyGraph.DEFAULT_NODE_LABEL if is_property else None
            for op, payload, _ in self._journal_tail(name):
                if op == "add_node":
                    node, label, props = payload
                    entry = nodes.setdefault(node, [default_label, None])
                    if label is not None:
                        entry[0] = label
                    elif entry[0] is None:
                        entry[0] = default_label
                    if props:
                        merged = dict(entry[1] or {})
                        merged.update(props)
                        entry[1] = merged
                elif op == "add_edge":
                    for endpoint in (payload[1], payload[2]):
                        nodes.setdefault(endpoint, [default_label, None])
                elif op == "set_property":
                    obj, prop_name, value = payload
                    entry = nodes.get(obj)
                    if entry is not None:
                        merged = dict(entry[1] or {})
                        merged[prop_name] = value
                        entry[1] = merged
        return [(node, entry[0], entry[1]) for node, entry in nodes.items()]

    def read_segment(self, name: str, label) -> list[tuple]:
        """All ``(id, src, tgt, label, props)`` edges carrying ``label``.

        The label-partitioned read backing lazy segment faulting: an
        indexed snapshot scan plus the (bounded) journal tail.
        """
        with self._lock:
            self._check_open()
            self._manifest_row(name)
            edges: dict = {}
            for id_, src, tgt, props in self._conn.execute(
                "SELECT id, src, tgt, props FROM edges WHERE graph=? AND label=?",
                (name, encode(label)),
            ):
                edges[decode(id_)] = [decode(src), decode(tgt), decode_props(props)]
            for op, payload, _ in self._journal_tail(name):
                if op == "add_edge":
                    edge, src, tgt, edge_label, props = payload
                    if edge_label == label:
                        edges[edge] = [src, tgt, dict(props) if props else None]
                elif op == "set_property":
                    obj, prop_name, value = payload
                    entry = edges.get(obj)
                    if entry is not None:
                        merged = dict(entry[2] or {})
                        merged[prop_name] = value
                        entry[2] = merged
        return [
            (edge, entry[0], entry[1], label, entry[2])
            for edge, entry in edges.items()
        ]

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------
    def attach(self, name: str, graph: EdgeLabeledGraph) -> None:
        """Install the write-through journal sink on a live graph.

        The sink is a closure appending ``(op, payload, version)`` tuples to
        the graph's buffer — no lock, no encoding, no I/O on the mutation
        hot path.  Once the buffer reaches ``flush_every`` records the next
        mutation triggers a group commit.
        """
        with self._lock:
            self._check_open()
            self._manifest_row(name)
            buffer = self._buffers.setdefault(name, [])
        flush_every = self.flush_every
        append = buffer.append

        def record(op, payload, version):
            append((op, payload, version))
            if len(buffer) >= flush_every:
                self.flush(name)

        graph.attach_journal(record)

    def pending(self, name: str) -> int:
        return len(self._buffers.get(name, ()))

    def flush(self, name: "str | None" = None, *, _compact: bool = True) -> int:
        """Group-commit buffered journal records; the durability barrier.

        Returns the number of records made durable.  All-or-nothing: the
        buffer is only drained after the batch commits, so an injected
        failure at ``storage.journal_write`` (or a crash) leaves every
        buffered record in place for the next flush.
        """
        if name is None:
            with self._lock:
                names = list(self._buffers)
            return sum(self.flush(n) for n in names)
        buffer = self._buffers.get(name)
        if not buffer:
            return 0
        with self._lock:
            self._check_open()
            count = len(buffer)
            if count == 0:
                return 0
            items = buffer[:count]
            if fault_point("storage.journal_write"):
                # Injected "write lost" drop: nothing durable, nothing drained.
                return 0
            batch = [
                [op, _payload_to_json(op, payload), version]
                for op, payload, version in items
            ]
            last_version = items[-1][2]
            with self._conn:
                (next_seq,) = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), -1) + 1 FROM journal WHERE graph=?",
                    (name,),
                ).fetchone()
                self._conn.execute(
                    "INSERT INTO journal VALUES (?,?,?,?,?)",
                    (name, next_seq, encode(batch), last_version, count),
                )
                self._conn.execute(
                    "UPDATE graphs SET version=? WHERE name=?",
                    (last_version, name),
                )
            del buffer[:count]
            batches = next_seq + 1
        if _compact and self.compact_every and batches >= self.compact_every:
            self.compact(name)
        return count

    def journal_rows(self, name: str) -> int:
        with self._lock:
            self._check_open()
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM journal WHERE graph=?", (name,)
            ).fetchone()
        return count

    def compact(self, name: str) -> dict:
        """Fold the journal into a fresh snapshot (version unchanged).

        Records buffered *during* compaction survive: the journal buffer
        object is never replaced, and ``put_graph`` only clears durable
        journal rows — anything appended after the flush below simply lands
        in the next batch.
        """
        with self._lock:
            self._check_open()
            self.flush(name, _compact=False)
            graph = self.load_graph(name)
            self.put_graph(name, graph, _keep_buffer=True)
            return self.graph_info(name)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush every buffer and close the database (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"store at {self.path} is closed")

    def _manifest_row(self, name: str) -> tuple:
        row = self._conn.execute(
            "SELECT name, kind, version, snapshot_version, nodes, edges "
            "FROM graphs WHERE name=?",
            (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no graph named {name!r} in store {self.path}")
        return row

    def _journal_tail(self, name: str) -> list[tuple]:
        records: list[tuple] = []
        for (batch_text,) in self._conn.execute(
            "SELECT batch FROM journal WHERE graph=? ORDER BY seq", (name,)
        ):
            for op, payload, version in decode(batch_text):
                records.append((op, _payload_from_json(op, payload), version))
        return records
