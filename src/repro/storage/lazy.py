"""Lazy graph handles: fault in only the label segments a query touches.

A catalog bigger than RAM stays queryable because a stored graph is not
loaded at registration — a :class:`LazyGraphHandle` holds just the manifest
(kind, durable version, per-label edge counts).  When a query arrives the
service asks :func:`query_labels` which stored labels the compiled
automaton can actually traverse, and the handle builds (or reuses) a
**view**: a real :class:`EdgeLabeledGraph` / :class:`PropertyGraph` holding
every node but only the edges of those labels, fed straight into the
existing label-index / CSR build path.

Correctness hinges on the Remark 11 alphabet: wildcards (``_``) and
negation (``!{a}``) instantiate over ``graph.labels``, so a view that
reported only its resident labels would compile a *different* automaton
than the fully-resident graph.  Views therefore report the full stored
label set (``_labels_seen``), and :func:`query_labels` derives the needed
labels from the automaton compiled over that same full alphabet — the
compilation-cache key, the automaton and hence the answers are identical to
resident evaluation, which the differential suite proves.

Views are the LRU unit of the ``--max-resident-edges`` budget: each keyed
by its label set, evicted least-recently-used first (the view being built
is always kept, so a single over-budget query still runs).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from repro.engine.cache import DEFAULT_CACHE, CompilationCache
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.property_graph import PropertyGraph
from repro.regex.ast import symbols
from repro.storage.store import GraphStore


def query_labels(
    query: str,
    stored_labels: frozenset,
    *,
    cache: "CompilationCache | None" = None,
) -> frozenset:
    """The stored labels the compiled query can traverse.

    Works for RPQs and CRPQs (one automaton per atom).  Each regex is
    compiled over the full Remark 11 alphabet — stored labels plus query
    symbols — and the union of symbols appearing in any transition row is
    intersected with the stored labels.  A query whose alphabet misses
    every stored label yields the empty set (the view then has nodes but no
    edges, exactly what resident evaluation would traverse).
    """
    cache = cache if cache is not None else DEFAULT_CACHE
    if ":-" in query:
        from repro.crpq.ast import parse_crpq

        regexes = [atom.regex for atom in parse_crpq(query).atoms]
    else:
        regexes = [cache.parse(query)]
    needed: set = set()
    for regex in regexes:
        compiled = cache.compile(regex, stored_labels | symbols(regex))
        for row in compiled.delta.values():
            needed.update(row)
    return frozenset(needed) & stored_labels


class LazyGraphHandle:
    """A stored graph addressed by manifest, materialized by label segment.

    ``view(labels)`` returns a graph restricted to the requested label
    segments; ``materialize()`` upgrades to the fully-resident, journal-
    attached graph (required before mutating).  Both are thread-safe.
    """

    def __init__(
        self,
        store: GraphStore,
        name: str,
        *,
        max_resident_edges: "int | None" = None,
    ) -> None:
        self.store = store
        self.name = name
        self.max_resident_edges = max_resident_edges
        self._lock = threading.RLock()
        self._views: "OrderedDict[frozenset, EdgeLabeledGraph]" = OrderedDict()
        self._resident_edges = 0
        self._nodes: "list | None" = None
        self._full: "EdgeLabeledGraph | None" = None
        #: observability: segment-faulted view builds / cache hits
        self.view_builds = 0
        self.view_hits = 0
        info = store.graph_info(name)
        self.kind: str = info["kind"]
        self.version: int = info["version"]
        self.num_nodes: int = info["nodes"]
        self.num_edges: int = info["edges"]
        self.label_counts: dict = store.label_counts(name)
        self.labels: frozenset = frozenset(self.label_counts)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def info(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "nodes": self.num_nodes,
                "edges": self.num_edges,
                "labels": sorted(self.labels, key=repr),
                "version": self.version,
                "resident": self._full is not None,
                "resident_edges": self._resident_edges,
                "views": len(self._views),
            }

    @property
    def resident(self) -> bool:
        return self._full is not None

    # ------------------------------------------------------------------
    # faulting
    # ------------------------------------------------------------------
    def view(self, labels: Iterable) -> EdgeLabeledGraph:
        """A graph holding all nodes and exactly the edges of ``labels``.

        Once materialized, the full graph answers every view request (it is
        a superset and already paid for).
        """
        full = self._full
        if full is not None:
            return full
        key = frozenset(labels) & self.labels
        with self._lock:
            if self._full is not None:
                return self._full
            cached = self._views.get(key)
            if cached is not None:
                self._views.move_to_end(key)
                self.view_hits += 1
                return cached
            view = self._build_view(key)
            self.view_builds += 1
            self._views[key] = view
            self._resident_edges += view.num_edges
            self._evict()
            return view

    def materialize(self) -> EdgeLabeledGraph:
        """The fully-resident graph, write-through journal attached."""
        with self._lock:
            if self._full is None:
                graph = self.store.load_graph(self.name)
                self.store.attach(self.name, graph)
                self._full = graph
                # Segment views are strictly redundant now; free them.
                self._views.clear()
                self._resident_edges = graph.num_edges
            return self._full

    def _build_view(self, key: frozenset) -> EdgeLabeledGraph:
        is_property = self.kind == "property"
        view: EdgeLabeledGraph = PropertyGraph() if is_property else EdgeLabeledGraph()
        if self._nodes is None:
            self._nodes = self.store.read_nodes(self.name)
        for node, label, props in self._nodes:
            if is_property:
                view.add_node(node, label=label, properties=props)
            else:
                view.add_node(node)
        for label in sorted(key, key=repr):
            for edge, src, tgt, edge_label, props in self.store.read_segment(
                self.name, label
            ):
                if is_property:
                    view.add_edge(edge, src, tgt, edge_label, properties=props)
                else:
                    view.add_edge(edge, src, tgt, edge_label)
        # Wildcard coherence (Remark 11): the view must report the *stored*
        # label set so alphabet_for() compiles the identical automaton the
        # resident graph would get — same compile-cache key, same answers.
        view._labels_seen = set(self.labels)
        # Version coherence: answers computed from this view are answers of
        # the stored graph at its durable version; the answer cache keys on
        # it, so a restart (or a peer view) maps to the same entry.
        view._version = self.version
        return view

    def _evict(self) -> None:
        budget = self.max_resident_edges
        if budget is None:
            return
        while self._resident_edges > budget and len(self._views) > 1:
            _, evicted = self._views.popitem(last=False)
            self._resident_edges -= evicted.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LazyGraphHandle {self.name!r} kind={self.kind} "
            f"labels={len(self.labels)} views={len(self._views)} "
            f"resident={self._full is not None}>"
        )
