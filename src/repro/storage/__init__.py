"""Durable storage tier: SQLite-backed graph store with lazy segment loading.

See DESIGN.md §13.  Public surface:

* :class:`~repro.storage.store.GraphStore` — snapshots + append-only
  mutation journal + compaction, one database per data directory;
* :class:`~repro.storage.lazy.LazyGraphHandle` /
  :func:`~repro.storage.lazy.query_labels` — fault in only the label
  segments a query's automaton touches, under an LRU edge budget.
"""

from repro.storage.lazy import LazyGraphHandle, query_labels
from repro.storage.store import GraphStore, apply_record

__all__ = ["GraphStore", "LazyGraphHandle", "apply_record", "query_labels"]
