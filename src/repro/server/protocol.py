"""The service's JSON-lines protocol: requests, responses, typed errors.

One request is one JSON object on one line; one response is one JSON object
on one line.  The same envelopes travel over the raw TCP framing and the
HTTP façade (``POST /query`` carries a single request as its body), so every
transport shares one error vocabulary:

=================  ============================================== =====
code               meaning                                         HTTP
=================  ============================================== =====
``bad_request``    malformed JSON, unknown op, missing parameter    400
``parse_error``    the query text failed to parse                   400
``query_error``    well-formed query that cannot be evaluated       422
``graph_not_found`` no cataloged graph under that name              404
``too_large``      request line/body exceeds the size limit         413
``overloaded``     admission queue full or queue-timeout hit        429
``timeout``        per-query wall-clock budget exhausted            504
``budget_exceeded`` a row/state ceiling stopped the evaluation      422
``shutting_down``  server is draining; no new work accepted         503
``shard_unavailable`` a shard worker died mid-query (coordinator)   503
``internal``       anything else (a server bug, by definition)      500
=================  ============================================== =====

``timeout`` and ``budget_exceeded`` responses are *structured partial
results*: their ``details`` name the limit that tripped, how far the
evaluation got (``rows_so_far``, ``states_visited``, ``elapsed_seconds``)
and up to :data:`PARTIAL_ROWS_CAP` of the rows produced before the limit
hit.

Every error class carries its ``code`` so handlers map exceptions to
envelopes (and HTTP statuses) without string matching; clients re-raise
them as :class:`repro.server.client.ServerError` with the same code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.engine.limits import BudgetExceeded
from repro.errors import (
    EvaluationError,
    GraphError,
    ParseError,
    QueryError,
    ReproError,
)

#: Every operation the service understands.  ``sleep`` holds an admission
#: slot in the event loop for a given number of seconds — it exists so
#: overload and drain behavior can be tested deterministically.
OPS = frozenset(
    {
        "ping",
        "stats",
        "health",
        "graphs.list",
        "graphs.upload",
        "graphs.mutate",
        "rpq",
        "crpq",
        "dlrpq",
        "paths",
        "explain",
        "frontier_step",
        "cluster_metrics",
        "sleep",
    }
)

#: How many partial-result rows a timeout/budget_exceeded envelope carries.
PARTIAL_ROWS_CAP = 100

#: Ops that answer from in-memory state without touching the worker pool;
#: they bypass admission control so health checks still answer under load.
CONTROL_OPS = frozenset(
    {"ping", "stats", "health", "graphs.list", "cluster_metrics"}
)


class ServiceError(ReproError):
    """Base class of every typed protocol error."""

    code = "internal"
    http_status = 500

    def __init__(self, message: str, **details: Any):
        super().__init__(message)
        self.message = message
        self.details = details

    def envelope(self) -> dict:
        """The JSON error object carried in a failed response."""
        body: dict = {"code": self.code, "message": self.message}
        if self.details:
            body["details"] = self.details
        return body


class BadRequestError(ServiceError):
    code = "bad_request"
    http_status = 400


class GraphNotFoundError(ServiceError):
    code = "graph_not_found"
    http_status = 404


class RequestTooLargeError(ServiceError):
    code = "too_large"
    http_status = 413


class OverloadedError(ServiceError):
    code = "overloaded"
    http_status = 429


class QueryTimeoutError(ServiceError):
    code = "timeout"
    http_status = 504


class BudgetExceededError(ServiceError):
    """A row/state ceiling (not the clock) stopped the evaluation."""

    code = "budget_exceeded"
    http_status = 422


def _partial_rows(partial) -> "list | None":
    """Up to :data:`PARTIAL_ROWS_CAP` partial rows, JSON-shaped.

    Rows are sorted by repr so the same partial answer always serializes
    the same way (answer sets are unordered).
    """
    if partial is None:
        return None
    try:
        rows = sorted(partial, key=repr)[:PARTIAL_ROWS_CAP]
    except TypeError:
        return None
    return [list(row) if isinstance(row, tuple) else row for row in rows]


def budget_envelope(exc: BudgetExceeded) -> dict:
    """The typed error object for a tripped query budget.

    Deadline and cancellation trips keep the existing ``timeout`` code (the
    HTTP façade's 504); row/state ceilings get ``budget_exceeded`` (422 —
    the *request* asked for less than the answer needed).  Both carry the
    structured partial-result details.
    """
    details = exc.details()
    rows = _partial_rows(exc.partial)
    if rows is not None:
        details["partial"] = rows
        details["partial_truncated"] = exc.rows_so_far > len(rows)
    code = "timeout" if exc.limit in ("timeout", "cancelled") else "budget_exceeded"
    return {"code": code, "message": str(exc), "details": details}


class ShuttingDownError(ServiceError):
    code = "shutting_down"
    http_status = 503


class ShardUnavailableError(ServiceError):
    """A shard worker died, refused, or desynchronized mid-round.

    Raised by the *coordinator* (shards themselves fail with their own
    typed errors; the coordinator wraps transport loss and shard-side
    ``internal`` envelopes into this, carrying which shard and which
    frontier-exchange round).  503: retrying against a repaired or
    replacement shard set is reasonable.
    """

    code = "shard_unavailable"
    http_status = 503


def error_envelope(exc: BaseException) -> dict:
    """Map any exception to the typed error object of a failed response.

    Library errors keep their diagnostic message; unexpected exceptions are
    reported as ``internal`` with the exception type (not the message — a
    stack-adjacent message may leak paths or internal state).
    """
    if isinstance(exc, ServiceError):
        return exc.envelope()
    if isinstance(exc, BudgetExceeded):
        # Before the EvaluationError branch: a tripped budget is a
        # structured partial result, not a generic query_error.
        return budget_envelope(exc)
    if isinstance(exc, ParseError):
        return {"code": "parse_error", "message": str(exc)}
    if isinstance(exc, (QueryError, EvaluationError, GraphError)):
        return {"code": "query_error", "message": str(exc)}
    return {"code": "internal", "message": f"unexpected {type(exc).__name__}"}


def http_status_for(error: dict) -> int:
    """The HTTP status the façade sends for an error envelope."""
    statuses = {
        "bad_request": 400,
        "parse_error": 400,
        "query_error": 422,
        "graph_not_found": 404,
        "too_large": 413,
        "overloaded": 429,
        "timeout": 504,
        "budget_exceeded": 422,
        "shutting_down": 503,
        "shard_unavailable": 503,
    }
    return statuses.get(error.get("code", "internal"), 500)


@dataclass(frozen=True)
class Request:
    """One decoded protocol request."""

    op: str
    id: "int | str | None" = None
    params: dict = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require(self, name: str) -> Any:
        """The parameter ``name``, or a ``bad_request`` if absent."""
        try:
            return self.params[name]
        except KeyError:
            raise BadRequestError(
                f"op {self.op!r} requires parameter {name!r}", param=name
            ) from None


def encode_request(op: str, id: "int | str | None" = None, **params: Any) -> bytes:
    """One request as a newline-terminated JSON line."""
    payload: dict = {"op": op}
    if id is not None:
        payload["id"] = id
    if params:
        payload["params"] = params
    return json.dumps(payload, default=str).encode("utf-8") + b"\n"


def decode_request(data: "bytes | str", max_bytes: "int | None" = None) -> Request:
    """Decode and validate one request line.

    Raises :class:`RequestTooLargeError` when the line exceeds ``max_bytes``
    and :class:`BadRequestError` for malformed JSON, a non-object payload,
    an unknown op, or a malformed id/params field.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    if max_bytes is not None and len(data) > max_bytes:
        raise RequestTooLargeError(
            f"request of {len(data)} bytes exceeds the {max_bytes}-byte limit",
            size=len(data),
            limit=max_bytes,
        )
    try:
        payload = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequestError("request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str):
        raise BadRequestError("request needs a string 'op' field")
    if op not in OPS:
        raise BadRequestError(f"unknown op {op!r}", known=sorted(OPS))
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise BadRequestError("request 'id' must be a string or integer")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise BadRequestError("request 'params' must be a JSON object")
    return Request(op=op, id=request_id, params=params)


def ok_response(request_id: "int | str | None", result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: "int | str | None", exc: BaseException) -> dict:
    return {"id": request_id, "ok": False, "error": error_envelope(exc)}


def encode_response(response: dict) -> bytes:
    """One response as a newline-terminated JSON line.

    ``default=str`` keeps exotic-but-hashable node ids (the graph model
    allows any hashable) from killing the connection; the datasets and
    generators in this library only produce JSON-native ids.
    """
    return json.dumps(response, default=str).encode("utf-8") + b"\n"


def decode_response(data: "bytes | str") -> dict:
    """Decode one response line (client side)."""
    try:
        payload = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"response is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise BadRequestError("response must be a JSON object with an 'ok' field")
    return payload
