"""Admission control: keep an overloaded service fast at saying no.

The complexity results the paper catalogs (Sections 5-6) mean a single
adversarial query can hold a worker for a long time; a service that keeps
queueing behind such queries converts one slow query into unbounded latency
for everyone.  The controller bounds every axis:

* ``max_concurrency`` — a semaphore of worker slots; at most this many
  queries execute at once (matched to the worker pool size);
* ``max_queue`` — how many requests may *wait* for a slot.  A request that
  arrives with the queue full is rejected immediately with the typed
  ``overloaded`` error (the 429-style fast path — callers never hang);
* ``queue_timeout`` — a queued request that does not get a slot in time is
  rejected with the same typed error rather than waiting forever;
* ``query_timeout`` — the per-query wall-clock budget enforced by the app
  around execution (``asyncio.wait_for``); the worker thread itself cannot
  be killed mid-BFS, but the client gets its typed ``timeout`` answer the
  moment the budget expires;
* ``max_request_bytes`` — the request-size limit the protocol decoder and
  the stream reader enforce.

Rejections are counted per reason so ``/metrics`` shows *why* work was
shed, and the ``snapshot()`` view feeds ``stats`` responses and tests.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

from repro.server.protocol import OverloadedError

#: Defaults sized for a small Python service: a handful of concurrent
#: product-BFS evaluations is already CPU-saturating under the GIL.
DEFAULT_MAX_CONCURRENCY = 8
DEFAULT_MAX_QUEUE = 32
DEFAULT_QUEUE_TIMEOUT = 2.0
DEFAULT_QUERY_TIMEOUT = 30.0
DEFAULT_MAX_REQUEST_BYTES = 1 << 20


class AdmissionController:
    """Semaphore + bounded wait queue + timeouts, with rejection counters."""

    def __init__(
        self,
        *,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        max_queue: int = DEFAULT_MAX_QUEUE,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        query_timeout: float = DEFAULT_QUERY_TIMEOUT,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout <= 0 or query_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self.query_timeout = query_timeout
        self.max_request_bytes = max_request_bytes
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._active = 0
        self._waiting = 0
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_queue_timeout = 0

    # ------------------------------------------------------------------
    # the slot protocol
    # ------------------------------------------------------------------
    @asynccontextmanager
    async def slot(self):
        """Hold one execution slot; raise ``overloaded`` instead of hanging.

        The fast rejection happens *before* touching the semaphore: when
        the requests already admitted-or-waiting fill every slot plus the
        whole wait queue, the caller is turned away synchronously — the
        check is on total commitments (``active + waiting``), which is
        monotone under the event loop's interleaving, so a burst of N
        arrivals sheds exactly ``N - slots - queue`` of them no matter how
        the scheduler orders their semaphore acquisitions.  Otherwise the
        caller queues, bounded by ``queue_timeout``.
        """
        if self._active + self._waiting >= self.max_concurrency + self.max_queue:
            self.rejected_queue_full += 1
            raise OverloadedError(
                f"all {self.max_concurrency} slots busy and the wait queue "
                f"of {self.max_queue} is full",
                reason="queue_full",
                active=self._active,
                waiting=self._waiting,
            )
        self._waiting += 1
        try:
            try:
                await asyncio.wait_for(
                    self._semaphore.acquire(), self.queue_timeout
                )
            except asyncio.TimeoutError:
                self.rejected_queue_timeout += 1
                raise OverloadedError(
                    f"no execution slot freed within the "
                    f"{self.queue_timeout}s queue timeout",
                    reason="queue_timeout",
                    active=self._active,
                    waiting=self._waiting - 1,
                ) from None
        finally:
            self._waiting -= 1
        self._active += 1
        self.admitted += 1
        try:
            yield self
        finally:
            self._active -= 1
            self._semaphore.release()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Requests currently holding a slot."""
        return self._active

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        return self._waiting

    def snapshot(self) -> dict:
        """A JSON-ready view for ``stats`` responses and tests."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "queue_timeout": self.queue_timeout,
            "query_timeout": self.query_timeout,
            "max_request_bytes": self.max_request_bytes,
            "active": self._active,
            "waiting": self._waiting,
            "admitted": self.admitted,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_queue_timeout": self.rejected_queue_timeout,
        }
