"""The resident query service (DESIGN.md §8).

Everything the engine amortizes *within* a process — the label index, the
compile cache, the metrics registry — was still being rebuilt per CLI
invocation.  This package keeps them resident behind a small asyncio
service:

* :mod:`repro.server.protocol` — the JSON-lines request/response protocol
  with typed error envelopes;
* :mod:`repro.server.service` — :class:`GraphCatalog` (named, versioned
  graphs) and :class:`QueryService` (worker-pool execution with a
  version-keyed LRU answer cache);
* :mod:`repro.server.admission` — concurrency/queue/timeout/size limits;
* :mod:`repro.server.app` — the asyncio TCP server + HTTP façade with
  signal-driven graceful drain;
* :mod:`repro.server.client` — the blocking client used by tests, the CLI
  and ``benchmarks/bench_server.py``.
"""

from repro.server.admission import AdmissionController
from repro.server.app import QueryServer, ServerThread
from repro.server.client import ServerClient, ServerError, http_get
from repro.server.protocol import (
    BadRequestError,
    GraphNotFoundError,
    OverloadedError,
    QueryTimeoutError,
    Request,
    RequestTooLargeError,
    ServiceError,
    ShuttingDownError,
)
from repro.server.service import AnswerCache, GraphCatalog, QueryService

__all__ = [
    "AdmissionController",
    "AnswerCache",
    "BadRequestError",
    "GraphCatalog",
    "GraphNotFoundError",
    "OverloadedError",
    "QueryServer",
    "QueryService",
    "QueryTimeoutError",
    "Request",
    "RequestTooLargeError",
    "ServerClient",
    "ServerError",
    "ServerThread",
    "ServiceError",
    "ShuttingDownError",
    "http_get",
]
