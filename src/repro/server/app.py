"""The asyncio server: TCP JSON-lines, an HTTP façade, graceful drain.

One listening socket speaks both transports: the first line of a
connection decides whether it is an HTTP request (``GET /healthz``,
``GET /metrics``, ``GET /stats``, ``POST /query``) or a JSON-lines session
(any number of protocol requests, one per line, answered in order).
Execution always flows through the same path — admission slot, worker-pool
``run_in_executor``, per-query ``wait_for`` budget — so both transports
share the typed error vocabulary and the metrics.

**Graceful drain** (SIGTERM/SIGINT, or :meth:`QueryServer.request_drain`):

1. stop accepting — the listening socket closes immediately;
2. finish in-flight — requests already received keep their slots and their
   responses are delivered; requests arriving on still-open connections
   after the signal get the typed ``shutting_down`` error;
3. flush — the metrics registry is written to ``--metrics-out`` (Prometheus
   text) and collected span trees to ``--trace-out`` (JSONL), then every
   remaining connection is closed and the serve loop returns so the CLI
   exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.faults import FaultError, fault_point
from repro.engine.limits import CancellationToken, make_budget
from repro.engine.tracing import NULL_TRACER, Tracer, use_tracer
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    CONTROL_OPS,
    BadRequestError,
    QueryTimeoutError,
    Request,
    RequestTooLargeError,
    ServiceError,
    ShuttingDownError,
    decode_request,
    encode_response,
    error_response,
    http_status_for,
    ok_response,
)
from repro.server.service import QueryService

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")

#: Extra seconds the hard ``wait_for`` allows past the cooperative deadline,
#: so the worker's own (informative, partial-result-carrying) BudgetExceeded
#: normally wins the race against the bare asyncio timeout.
_WAIT_GRACE = 0.1


class QueryServer:
    """The resident service: one instance per process, many connections."""

    def __init__(
        self,
        service: "QueryService | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: "AdmissionController | None" = None,
        metrics_out: "str | None" = None,
        trace_out: "str | None" = None,
        announce: bool = False,
    ):
        self.service = service if service is not None else QueryService()
        self.admission = admission if admission is not None else AdmissionController()
        self.host = host
        self.port = port
        self.metrics_out = metrics_out
        self.trace_out = trace_out
        self.announce = announce
        self._server: "asyncio.AbstractServer | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.admission.max_concurrency,
            thread_name_prefix="repro-query",
        )
        self._tracer = Tracer() if trace_out else NULL_TRACER
        self._draining = False
        self._drain_task: "asyncio.Task | None" = None
        self._in_flight = 0
        self._idle: "asyncio.Event | None" = None
        self._done: "asyncio.Event | None" = None
        self._writers: set = set()
        #: set once the listening socket is bound (thread-safe: ServerThread
        #: waits on it from another thread before handing out the address)
        self.started = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid once :attr:`started` is set)."""
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=self.admission.max_request_bytes + 4096,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started.set()
        if self.announce:
            print(
                json.dumps(
                    {"event": "listening", "host": self.host, "port": self.port}
                ),
                flush=True,
            )

    async def serve(self, *, install_signals: bool = True) -> None:
        """Run until drained.  The CLI entry point and ServerThread body."""
        with use_tracer(self._tracer):
            await self.start()
            if install_signals:
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(sig, self.request_drain)
                    except NotImplementedError:  # pragma: no cover - windows
                        pass
            await self._done.wait()

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal-handler and cross-thread safe)."""
        if self._loop is None or self._drain_task is not None:
            return
        self._drain_task = self._loop.create_task(self._drain())

    def request_drain_threadsafe(self) -> None:
        """Schedule :meth:`request_drain` from any thread (idempotent —
        a loop that already drained and closed is left alone)."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.request_drain)
        except RuntimeError:
            pass  # loop already closed: the drain has happened

    async def _drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight requests (received before the signal) run to completion
        # and their responses are written before connections die.
        if self._idle is not None:
            await self._idle.wait()
        self.flush()
        for writer in list(self._writers):
            writer.close()
        self._pool.shutdown(wait=True)
        # After the pool stops no request can mutate a graph: flush the
        # storage journal and close the store so the last acknowledged
        # mutation is on disk before the process exits.
        self.service.close()
        if self._done is not None:
            self._done.set()

    def flush(self) -> None:
        """Write the metrics exposition and pending span trees to disk."""
        if self.metrics_out:
            with open(self.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(self.service.metrics.render_prometheus())
        self._flush_traces()

    def _flush_traces(self) -> None:
        # write_jsonl drains by default, so periodic flushes append each
        # finished root exactly once.
        if self.trace_out:
            self._tracer.write_jsonl(self.trace_out)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            try:
                first = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(
                    encode_response(
                        error_response(
                            None,
                            RequestTooLargeError(
                                "request line exceeds the size limit"
                            ),
                        )
                    )
                )
                await writer.drain()
                return
            if not first:
                return
            if first.startswith(_HTTP_METHODS):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except FaultError:
            # An injected transport fault (chaos tests): treat it exactly
            # like a real connection death — sever, never hang the drain.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # JSON-lines transport
    # ------------------------------------------------------------------
    async def _handle_jsonl(self, first: bytes, reader, writer) -> None:
        line = first
        while line:
            if line.strip():
                if fault_point("server.read"):
                    return  # injected torn connection before processing
                response = await self._respond_to_line(line)
                if fault_point("server.write"):
                    return  # injected torn connection: request ran, response lost
                writer.write(encode_response(response))
                await writer.drain()
                self._flush_traces()
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(
                    encode_response(
                        error_response(
                            None,
                            RequestTooLargeError(
                                "request line exceeds the size limit"
                            ),
                        )
                    )
                )
                await writer.drain()
                return

    async def _respond_to_line(self, line: bytes) -> dict:
        try:
            request = decode_request(line, self.admission.max_request_bytes)
        except ServiceError as exc:
            self.service.record_error(exc.code)
            return error_response(None, exc)
        return await self.handle_request(request)

    # ------------------------------------------------------------------
    # request execution (shared by both transports)
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request) -> dict:
        if self._draining:
            exc = ShuttingDownError("server is draining; try another replica")
            self.service.record_error(exc.code)
            return error_response(request.id, exc)
        self._in_flight += 1
        self._idle.clear()
        try:
            result = await self._execute(request)
            return ok_response(request.id, result)
        except ServiceError as exc:
            self.service.record_error(exc.code)
            return error_response(request.id, exc)
        except asyncio.TimeoutError:
            exc = QueryTimeoutError(
                f"query exceeded the {self.admission.query_timeout}s "
                "wall-clock budget",
                timeout=self.admission.query_timeout,
            )
            self.service.record_error(exc.code)
            return error_response(request.id, exc)
        except Exception as exc:  # noqa: BLE001 - typed envelope boundary
            response = error_response(request.id, exc)
            self.service.record_error(response["error"]["code"])
            return response
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    async def _execute(self, request: Request):
        # Control ops answer from memory even when every slot is busy —
        # health checks must not be starved by an overload.
        if request.op in CONTROL_OPS:
            result = self.service.execute(request)
            if request.op == "stats":
                result["admission"] = self.admission.snapshot()
                result["in_flight"] = self._in_flight
            elif request.op == "health":
                # The service's health body plus what only the app knows:
                # how many requests hold slots and whether a drain started.
                result["in_flight"] = self._in_flight
                if self._draining:
                    result["status"] = "draining"
            return result
        async with self.admission.slot():
            if request.op == "sleep":
                seconds = request.param("seconds", 0.0)
                if not isinstance(seconds, (int, float)) or seconds < 0:
                    raise BadRequestError("'seconds' must be non-negative")
                await asyncio.wait_for(
                    asyncio.sleep(seconds), self.admission.query_timeout
                )
                return {"slept": seconds}
            budget, effective_timeout = self._budget_for(request)
            try:
                return await asyncio.wait_for(
                    self._loop.run_in_executor(
                        self._pool, self.service.execute, request, budget
                    ),
                    effective_timeout + _WAIT_GRACE,
                )
            except asyncio.TimeoutError:
                # The hard asyncio timeout fired before the worker noticed
                # its deadline (it is mid-stride, or wedged).  Cancelling
                # the token makes the worker unwind at its next stride
                # check, so the pool slot this admission slot maps to is
                # actually freed instead of burning until the fixpoint.
                if budget is not None and budget.cancellation is not None:
                    budget.cancellation.cancel("timeout")
                raise

    def _budget_for(self, request: Request):
        """The request's :class:`QueryBudget` plus its effective timeout.

        Per-request limits come from the ``timeout`` / ``max_rows`` /
        ``max_states`` params; the wall-clock budget is always on and is
        clamped by the server-wide ``query_timeout``, and every budget
        carries a fresh cancellation token the timeout handler can fire.
        """
        timeout = request.param("timeout")
        if timeout is not None:
            if (
                isinstance(timeout, bool)
                or not isinstance(timeout, (int, float))
                or timeout <= 0
            ):
                raise BadRequestError("'timeout' must be a positive number")
            effective = min(float(timeout), self.admission.query_timeout)
        else:
            effective = self.admission.query_timeout
        max_rows = request.param("max_rows")
        if max_rows is not None and (
            isinstance(max_rows, bool) or not isinstance(max_rows, int) or max_rows < 0
        ):
            raise BadRequestError("'max_rows' must be a non-negative integer")
        max_states = request.param("max_states")
        if max_states is not None and (
            isinstance(max_states, bool)
            or not isinstance(max_states, int)
            or max_states < 1
        ):
            raise BadRequestError("'max_states' must be a positive integer")
        budget = make_budget(
            timeout=effective,
            max_rows=max_rows,
            max_states=max_states,
            cancellation=CancellationToken(),
        )
        return budget, effective

    # ------------------------------------------------------------------
    # HTTP façade
    # ------------------------------------------------------------------
    async def _handle_http(self, first: bytes, reader, writer) -> None:
        try:
            method, target, _version = first.decode("latin-1").split(None, 2)
        except ValueError:
            await self._write_http(writer, 400, {"error": "malformed request line"})
            return
        headers: dict[str, str] = {}
        total = len(first)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > self.admission.max_request_bytes + 4096:
                await self._write_http(writer, 413, {"error": "headers too large"})
                return
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > self.admission.max_request_bytes:
                await self._write_http(
                    writer,
                    413,
                    {
                        "error": "body exceeds the request size limit",
                        "limit": self.admission.max_request_bytes,
                    },
                )
                return
            body = await reader.readexactly(length)

        path = target.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            await self._write_http(writer, 200, self._health())
            return
        if method == "GET" and path == "/metrics":
            await self._write_http_text(
                writer, 200, self.service.metrics.render_prometheus()
            )
            return
        if method == "GET" and path == "/stats":
            response = await self.handle_request(Request(op="stats"))
            await self._write_http(writer, 200, response)
            return
        if method == "POST" and path == "/query":
            response = await self._respond_to_line(body)
            status = (
                200 if response.get("ok") else http_status_for(response["error"])
            )
            await self._write_http(writer, status, response)
            self._flush_traces()
            return
        await self._write_http(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self.service.started_at, 3),
            "in_flight": self._in_flight,
            "graphs": len(self.service.catalog),
        }

    async def _write_http(self, writer, status: int, payload: dict) -> None:
        await self._write_http_text(
            writer,
            status,
            json.dumps(payload, default=str) + "\n",
            content_type="application/json",
        )

    async def _write_http_text(
        self, writer, status: int, text: str, content_type: str = "text/plain"
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   413: "Payload Too Large", 422: "Unprocessable Entity",
                   429: "Too Many Requests", 500: "Internal Server Error",
                   503: "Service Unavailable", 504: "Gateway Timeout"}
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


class ServerThread:
    """Run a :class:`QueryServer` on a background thread.

    The harness tests, ``benchmarks/bench_server.py`` and
    ``examples/query_service.py`` use this to get a live server inside one
    process::

        with ServerThread() as harness:
            client = ServerClient(*harness.address)

    Exiting the context drains the server (in-flight requests finish) and
    joins the thread.
    """

    def __init__(self, server: "QueryServer | None" = None, **server_kwargs):
        self.server = server if server is not None else QueryServer(**server_kwargs)
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve(install_signals=False)),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self.server.started.wait(timeout=10):
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self, timeout: float = 30) -> None:
        if self._thread is None:
            return
        self.server.request_drain_threadsafe()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise RuntimeError("server thread failed to drain in time")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
