"""The resident engine: graph catalog, answer cache, query execution.

This is where the per-process amortization the engine built in PRs 1-3
finally outlives a single query: the :class:`GraphCatalog` keeps named
graphs (and therefore their lazily-built label indexes) alive across
requests, the process-wide compile cache stays warm, and the
:class:`AnswerCache` short-circuits repeated queries entirely.

**Cache invalidation is by version, not by notification.**  An answer is
keyed on ``(graph name, catalog generation, graph.version, op, query,
options)``:

* ``graph.version`` is the graph's monotone mutation counter — any in-place
  mutation of a cataloged graph silently retires every answer computed
  against the old version;
* the catalog ``generation`` is a catalog-wide monotone counter stamped on
  every (re-)registration — two different uploads under one name can never
  collide even if their mutation counters happen to match.

Stale entries are never served (the key no longer matches) and age out of
the LRU; re-uploading a name also proactively drops its old entries.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.engine.cache import DEFAULT_CACHE
from repro.engine.faults import FaultError, fault_point
from repro.engine.limits import BudgetExceeded
from repro.engine.metrics import MetricsRegistry
from repro.engine.stats import EngineStats
from repro.engine.tracing import (
    Tracer,
    get_tracer,
    span_tree_dict,
    use_thread_tracer,
)
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.property_graph import PropertyGraph
from repro.server.protocol import (
    BadRequestError,
    GraphNotFoundError,
    Request,
)


class CatalogEntry:
    """One named graph in the catalog: resident, or a lazy stored handle.

    A durable catalog registers stored graphs without loading them — the
    entry then holds a :class:`~repro.storage.lazy.LazyGraphHandle` and the
    service queries label-segment *views* of it.  Touching :attr:`graph`
    (mutations, dlrpq-free ops that need the full graph) materializes the
    fully-resident, journal-attached graph on demand.
    """

    __slots__ = ("name", "generation", "_graph", "handle")

    def __init__(
        self,
        name: str,
        graph: "EdgeLabeledGraph | None",
        generation: int,
        handle=None,
    ):
        self.name = name
        self._graph = graph
        self.generation = generation
        self.handle = handle

    @property
    def graph(self) -> EdgeLabeledGraph:
        """The fully-resident graph (materializing a lazy entry on demand)."""
        graph = self._graph
        if graph is None:
            # Benign race: materialize() is locked and memoized on the
            # handle, so concurrent callers converge on one object.
            graph = self.handle.materialize()
            self._graph = graph
        return graph

    @property
    def resident(self) -> bool:
        return self._graph is not None

    @property
    def version(self) -> tuple:
        """The answer-cache version key: survives both in-place mutation
        (``graph.version`` moves) and replacement (``generation`` moves).

        For lazy entries the durable version stands in — by construction it
        equals the ``graph.version`` a materialized copy reports, so keys
        computed before and after materialization coincide."""
        graph = self._graph
        if graph is not None:
            return (self.generation, graph.version)
        return (self.generation, self.handle.version)

    def info(self) -> dict:
        graph = self._graph
        if graph is None:
            # Manifest-only: answering graphs.list must not fault segments.
            handle = self.handle
            return {
                "name": self.name,
                "kind": handle.kind,
                "nodes": handle.num_nodes,
                "edges": handle.num_edges,
                "labels": sorted(map(str, handle.labels)),
                "version": list(self.version),
            }
        return {
            "name": self.name,
            "kind": "property" if isinstance(graph, PropertyGraph) else "edge_labeled",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": sorted(map(str, graph.labels)),
            "version": list(self.version),
        }


class GraphCatalog:
    """Named, versioned graphs resident in the service process.

    With ``data_dir`` the catalog is durable: the manifest is loaded at
    startup (as lazy entries — nothing faults in until queried),
    registrations write through to the store, and mutations of cataloged
    graphs are journaled (see DESIGN.md §13).
    """

    def __init__(
        self,
        data_dir: "str | None" = None,
        *,
        max_resident_edges: "int | None" = None,
    ) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        self._lock = threading.Lock()
        self._generation = 0
        self.max_resident_edges = max_resident_edges
        self._store = None
        if data_dir is not None:
            from repro.storage.lazy import LazyGraphHandle
            from repro.storage.store import GraphStore

            self._store = GraphStore(data_dir)
            for name in self._store.names():
                self._generation += 1
                handle = LazyGraphHandle(
                    self._store, name, max_resident_edges=max_resident_edges
                )
                self._entries[name] = CatalogEntry(
                    name, None, self._generation, handle
                )

    @property
    def store(self):
        """The backing :class:`GraphStore`, or ``None`` for memory-only."""
        return self._store

    @property
    def durable(self) -> bool:
        return self._store is not None

    @classmethod
    def with_builtins(
        cls,
        data_dir: "str | None" = None,
        *,
        max_resident_edges: "int | None" = None,
    ) -> "GraphCatalog":
        """A catalog preloaded with the paper's bank graphs (fig2, fig3).

        On a durable catalog the builtins are only seeded when the store
        does not already hold them — a restart must hand back the user's
        (possibly mutated) fig2, not a fresh copy.
        """
        from repro.graph.datasets import figure2_graph, figure3_graph

        catalog = cls(data_dir, max_resident_edges=max_resident_edges)
        for name, build in (("fig2", figure2_graph), ("fig3", figure3_graph)):
            if name not in catalog:
                catalog.register(name, build())
        return catalog

    def register(self, name: str, graph: EdgeLabeledGraph) -> CatalogEntry:
        """Add (or replace) a graph under ``name`` (write-through when durable)."""
        if not isinstance(name, str) or not name:
            raise BadRequestError("graph name must be a non-empty string")
        if not isinstance(graph, EdgeLabeledGraph):
            raise BadRequestError("only graph objects can be cataloged")
        if self._store is not None:
            # Store first, swap second: a failed snapshot must not leave a
            # catalog entry with no durable backing.
            self._store.put_graph(name, graph)
            self._store.attach(name, graph)
        with self._lock:
            self._generation += 1
            entry = CatalogEntry(name, graph, self._generation)
            old = self._entries.get(name)
            self._entries[name] = entry
        if old is not None and old.resident and old._graph is not graph:
            # The replaced graph object must stop journaling under this name.
            old._graph.detach_journal()
        return entry

    def get(self, name: str) -> CatalogEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise GraphNotFoundError(
                f"no graph named {name!r} in the catalog", graph=name
            )
        return entry

    def drop(self, name: str) -> None:
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise GraphNotFoundError(
                f"no graph named {name!r} in the catalog", graph=name
            )
        if self._store is not None:
            if entry.resident:
                entry._graph.detach_journal()
            self._store.delete_graph(name)

    def flush(self, name: "str | None" = None) -> int:
        """Journal durability barrier (no-op for memory-only catalogs)."""
        if self._store is None:
            return 0
        return self._store.flush(name)

    def close(self) -> None:
        """Flush every journal buffer and close the store (idempotent)."""
        if self._store is not None:
            self._store.close()

    def storage_info(self) -> "dict | None":
        if self._store is None:
            return None
        lazy = resident = 0
        with self._lock:
            for entry in self._entries.values():
                if entry.resident:
                    resident += 1
                elif entry.handle is not None:
                    lazy += 1
        return {
            "data_dir": self._store.data_dir,
            "path": self._store.path,
            "resident_graphs": resident,
            "lazy_graphs": lazy,
            "max_resident_edges": self.max_resident_edges,
        }

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def versions(self) -> dict:
        """``{name: [generation, durable version]}`` for every graph.

        Deliberately cheap: reads the manifest-backed version of lazy
        entries without faulting a single segment in, so the fleet
        supervisor's heartbeat probes cost O(catalog) dict reads even on
        a durable catalog holding larger-than-RAM graphs.
        """
        with self._lock:
            entries = list(self._entries.values())
        return {entry.name: list(entry.version) for entry in entries}

    def list_info(self) -> list[dict]:
        with self._lock:
            entries = list(self._entries.values())
        return [entry.info() for entry in sorted(entries, key=lambda e: e.name)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_MISSING = object()


class AnswerCache:
    """A thread-safe LRU of fully-materialized query answers.

    Values are the JSON-ready result dicts the protocol ships, so a hit
    costs one dict lookup — no compile, no index, no BFS, no re-sorting.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("answer cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: dict = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple):
        """The cached answer for ``key``, or ``None`` (and a miss count)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return None
            # LRU refresh: dicts iterate in insertion order, so re-inserting
            # moves the key to the most-recently-used end.
            del self._entries[key]
            self._entries[key] = value
            self.hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1

    def invalidate_graph(self, name: str) -> int:
        """Drop every entry whose key belongs to graph ``name``.

        Version keying already guarantees stale answers are never *served*;
        this proactively frees the memory when a graph is re-uploaded.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == name]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
        return len(stale)

    def info(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class QueryService:
    """Execute protocol requests against the resident catalog and engine.

    :meth:`execute` is synchronous and thread-safe — the app calls it on a
    worker pool via ``run_in_executor``, so each request's ``server.request``
    span opens on that worker's empty thread-local stack and becomes a root
    tree with the kernel's spans nested inside.
    """

    #: ops whose answers are pure functions of (graph version, query text,
    #: options) and therefore cacheable.  Budget limits (timeout/max_rows/
    #: max_states) travel in the request params, hence in the cache key's
    #: options — and a tripped budget *raises* before the cache write, so
    #: the cache only ever holds complete answers.
    CACHEABLE_OPS = frozenset({"rpq", "crpq", "dlrpq", "paths", "explain"})

    def __init__(
        self,
        catalog: "GraphCatalog | None" = None,
        *,
        answer_cache_size: int = 512,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.catalog = catalog if catalog is not None else GraphCatalog.with_builtins()
        self.answer_cache = AnswerCache(answer_cache_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.started_at = time.time()
        self._metrics_lock = threading.Lock()

    # ------------------------------------------------------------------
    # the entry point
    # ------------------------------------------------------------------
    def execute(self, request: Request, budget=None) -> dict:
        """Run one request to a JSON-ready result (raises typed errors).

        ``budget`` (a :class:`~repro.engine.limits.QueryBudget`, built by
        the app from the request's limit params and the server default) is
        threaded into the evaluators; a tripped budget raises
        :class:`BudgetExceeded` — counted under ``server_budget_exceeded``
        — before any cache write happens.
        """
        tracer = get_tracer()
        trace_ctx = self._trace_context(request)
        started = time.perf_counter()
        fault_point("service.execute")
        try:
            if trace_ctx is not None and not tracer.enabled:
                # A remote caller sent a trace context but this process
                # traces nothing: run the request under a per-request
                # ephemeral tracer so the caller still gets its subtree.
                # Safe because execute() runs synchronously on one worker
                # thread — the override is thread-local and unwinds here.
                with use_thread_tracer(Tracer()) as ephemeral:
                    result, cache_hit = self._traced_dispatch(
                        request, budget, ephemeral, trace_ctx
                    )
            elif tracer.enabled:
                result, cache_hit = self._traced_dispatch(
                    request, budget, tracer, trace_ctx
                )
            else:
                result, cache_hit = self._dispatch(request, budget)
        except BudgetExceeded as exc:
            with self._metrics_lock:
                self.metrics.inc("server_budget_exceeded")
                self.metrics.inc(f"server_budget_exceeded_{exc.limit}")
            raise
        elapsed = time.perf_counter() - started
        with self._metrics_lock:
            self.metrics.inc("server_requests_total")
            self.metrics.inc(f"server_requests_{request.op.replace('.', '_')}")
            self.metrics.observe("server_request_seconds", elapsed)
            if request.op in self.CACHEABLE_OPS:
                self.metrics.inc(
                    "server_answer_cache_hits" if cache_hit
                    else "server_answer_cache_misses"
                )
                self.metrics.observe(
                    "server_cache_hit_seconds" if cache_hit
                    else "server_cache_miss_seconds",
                    elapsed,
                )
        return result

    @staticmethod
    def _trace_context(request: Request) -> "dict | None":
        """The validated remote trace context, or ``None`` when absent.

        The wire form is ``{"trace_id": <32-hex>, "span_id": <16-hex>}``
        where ``span_id`` names the *caller's* span — this request's
        ``server.request`` root becomes its remote child.
        """
        ctx = request.param("trace")
        if ctx is None:
            return None
        if (
            not isinstance(ctx, dict)
            or not isinstance(ctx.get("trace_id"), str)
            or not isinstance(ctx.get("span_id"), str)
        ):
            raise BadRequestError(
                "parameter 'trace' must be an object with string "
                "'trace_id' and 'span_id' fields"
            )
        return ctx

    def _traced_dispatch(
        self, request: Request, budget, tracer, trace_ctx: "dict | None"
    ) -> tuple[dict, bool]:
        """Dispatch under a ``server.request`` span.

        With a remote ``trace_ctx``, the root adopts the caller's
        trace_id/span_id and the finished subtree ships back on the
        result as ``trace_spans`` (size-capped dicts) — attached to a
        *shallow copy*, so the answer cache never holds span payloads.
        """
        with tracer.span("server.request", op=request.op, id=request.id) as span:
            if trace_ctx is not None:
                span.adopt_remote(trace_ctx)
            result, cache_hit = self._dispatch(request, budget)
            span.set(cache_hit=cache_hit)
        if trace_ctx is not None:
            result = dict(result)
            result["trace_spans"] = [span_tree_dict(span)]
        return result, cache_hit

    def record_error(self, code: str) -> None:
        """Count one failed request (the app calls this per error envelope)."""
        with self._metrics_lock:
            self.metrics.inc("server_errors_total")
            self.metrics.inc(f"server_errors_{code}")

    def _dispatch(self, request: Request, budget=None) -> tuple[dict, bool]:
        op = request.op
        if op == "ping":
            return {"pong": True}, False
        if op == "stats":
            return self.stats(), False
        if op == "health":
            return self.health(), False
        if op == "graphs.list":
            return {"graphs": self.catalog.list_info()}, False
        if op == "graphs.upload":
            return self._upload(request), False
        if op == "graphs.mutate":
            return self._mutate(request), False
        if op == "cluster_metrics":
            # The fleet-aggregation op: this process's registry in the
            # lossless dump form (raw bucket counts) so a coordinator can
            # merge registries across shards exactly.
            with self._metrics_lock:
                return {"metrics": self.metrics.dump()}, False
        if op == "frontier_step":
            # One round of the distributed product BFS: pure function of
            # (graph version, query, frontier), but frontiers are unique
            # per round, so caching would only churn the LRU.
            return self._frontier_step(request, budget), False
        if op in self.CACHEABLE_OPS:
            return self._query(request, budget)
        raise BadRequestError(f"op {op!r} is not executable by the service")

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._metrics_lock:
            metrics = self.metrics.as_dict()
        result = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "graphs": self.catalog.list_info(),
            "answer_cache": self.answer_cache.info(),
            "compile_cache": DEFAULT_CACHE.info(),
            "metrics": metrics,
        }
        storage = self.catalog.storage_info()
        if storage is not None:
            result["storage"] = storage
        return result

    def health(self) -> dict:
        """The cheap, idempotent liveness probe (DESIGN.md §14).

        Everything here answers from in-memory state — catalog names with
        their durable versions (no segment faulting), uptime, request
        counters — so a heartbeat prober can hammer it at sub-second
        intervals without competing with query execution (it is a control
        op: no admission slot, no worker pool).  The app layer adds the
        fields only it knows: ``in_flight`` and the draining flag.
        """
        with self._metrics_lock:
            requests_total = self.metrics.counters.get(
                "server_requests_total", 0
            )
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "graphs": self.catalog.versions(),
            "requests_total": requests_total,
        }

    def close(self) -> None:
        """Flush write-through journals and release the catalog's store.

        The app calls this at the end of a graceful drain; after it, the
        last acknowledged mutation is durable on disk."""
        self.catalog.close()

    def _upload(self, request: Request) -> dict:
        from repro.graph.serialize import graph_from_dict

        name = request.require("name")
        document = request.require("graph")
        if not isinstance(document, dict):
            raise BadRequestError(
                "parameter 'graph' must be a serialized graph document"
            )
        graph = graph_from_dict(document)
        entry = self.catalog.register(name, graph)
        dropped = self.answer_cache.invalidate_graph(name)
        info = entry.info()
        info["cache_entries_dropped"] = dropped
        return info

    def _mutate(self, request: Request) -> dict:
        """Apply in-place edits to a cataloged graph (write-through).

        Edits apply sequentially and in place; an invalid edit raises a
        typed error after its predecessors took effect (the response never
        reaches the client, but the applied prefix is flushed and stays
        durable — exactly the journal's consistent-prefix contract).  The
        flush below is the durability barrier: once the reply is on the
        wire, the mutation survives ``kill -9``.
        """
        name = request.require("graph")
        edits = request.require("edits")
        if not isinstance(edits, list) or not all(
            isinstance(edit, dict) for edit in edits
        ):
            raise BadRequestError(
                "parameter 'edits' must be a list of edit objects"
            )
        entry = self.catalog.get(name)
        graph = entry.graph  # materializes a lazy entry before writing
        applied = 0
        try:
            for index, edit in enumerate(edits):
                self._apply_edit(graph, edit, index)
                applied += 1
        finally:
            self.catalog.flush(name)
            if applied:
                self.answer_cache.invalidate_graph(name)
            with self._metrics_lock:
                self.metrics.inc("server_edits_applied", applied)
        return {
            "op": "graphs.mutate",
            "graph": name,
            "applied": applied,
            "version": list(entry.version),
        }

    @staticmethod
    def _apply_edit(graph, edit: dict, index: int) -> None:
        def field(key):
            try:
                return edit[key]
            except KeyError:
                raise BadRequestError(
                    f"edit {index}: missing field {key!r}"
                ) from None

        kind = edit.get("kind")
        is_property = isinstance(graph, PropertyGraph)
        if kind == "add_edge":
            if is_property:
                graph.add_edge(
                    field("id"), field("src"), field("tgt"), field("label"),
                    properties=edit.get("properties"),
                )
            else:
                graph.add_edge(
                    field("id"), field("src"), field("tgt"), field("label")
                )
        elif kind == "add_node":
            if is_property:
                graph.add_node(
                    field("id"),
                    label=edit.get("label"),
                    properties=edit.get("properties"),
                )
            else:
                graph.add_node(field("id"))
        elif kind == "set_property":
            if not is_property:
                raise BadRequestError(
                    f"edit {index}: set_property needs a property graph"
                )
            graph.set_property(field("id"), field("name"), field("value"))
        else:
            raise BadRequestError(f"edit {index}: unknown edit kind {kind!r}")

    def _graph_for(self, entry: CatalogEntry, op: str, query: str):
        """The graph to evaluate against: a lazy entry serves a label view.

        The view holds every node but only the label segments the compiled
        automaton can traverse (``query_labels``); dlrpq — whose query
        syntax the regex front-end does not cover — gets the all-labels
        view.  Resident entries (and memory-only catalogs) evaluate the
        graph itself.
        """
        handle = entry.handle
        if handle is None or handle.resident:
            return entry.graph
        if op == "dlrpq":
            return handle.view(handle.labels)
        from repro.storage.lazy import query_labels

        return handle.view(query_labels(query, handle.labels))

    def _query(self, request: Request, budget=None) -> tuple[dict, bool]:
        name = request.require("graph")
        query = request.require("query")
        if not isinstance(query, str):
            raise BadRequestError("parameter 'query' must be a string")
        entry = self.catalog.get(name)
        # "trace" is per-request routing context, not a query option: a
        # fresh caller span id every request would make every lookup a
        # miss and churn the LRU with never-again-matched keys.
        options = {
            key: value
            for key, value in request.params.items()
            if key not in ("graph", "query", "trace")
        }
        key = (
            name,
            entry.version,
            request.op,
            query,
            json.dumps(options, sort_keys=True, default=str),
        )
        cached = self.answer_cache.get(key)
        if cached is not None:
            return cached, True
        stats = EngineStats()
        handler = {
            "rpq": self._run_rpq,
            "crpq": self._run_crpq,
            "dlrpq": self._run_dlrpq,
            "paths": self._run_paths,
            "explain": self._run_explain,
        }[request.op]
        result = handler(
            self._graph_for(entry, request.op, query), query, request, stats,
            budget,
        )
        result["graph"] = name
        result["graph_version"] = list(entry.version)
        with self._metrics_lock:
            self.metrics.fold_stats(stats)
        # The cache write happens only on this clean-completion path — a
        # tripped budget raised out of the handler above, so failed,
        # cancelled or partial results can never populate the cache.  A
        # failed cache *write* degrades to an uncached (but correct) answer.
        try:
            fault_point("service.cache_put")
            self.answer_cache.put(key, result)
        except FaultError:
            with self._metrics_lock:
                self.metrics.inc("server_cache_put_failures")
        return result, False

    def _frontier_step(self, request: Request, budget=None) -> dict:
        """The shard half of the scatter-gather product BFS (DESIGN.md §11)."""
        from repro.distributed.frontier import (
            decode_mask,
            decode_pairs,
            local_frontier_step,
        )

        name = request.require("graph")
        query = request.require("query")
        if not isinstance(query, str):
            raise BadRequestError("parameter 'query' must be a string")
        alphabet = request.param("alphabet", [])
        if not isinstance(alphabet, list):
            raise BadRequestError("parameter 'alphabet' must be a list")
        state_bits = request.require("state_bits")
        if isinstance(state_bits, bool) or not isinstance(state_bits, int) \
                or state_bits < 0:
            raise BadRequestError(
                "parameter 'state_bits' must be a non-negative integer"
            )
        try:
            owned_mask = decode_mask(request.require("owned"))
            frontier = decode_pairs(request.require("frontier"))
        except ValueError as exc:
            raise BadRequestError(f"malformed frontier: {exc}") from None
        entry = self.catalog.get(name)
        stats = EngineStats()
        tracer = get_tracer()
        try:
            if tracer.enabled:
                with tracer.span(
                    "frontier_step",
                    graph=name,
                    round=request.param("round"),
                    frontier=len(frontier),
                ) as span:
                    result = local_frontier_step(
                        entry.graph, query, alphabet, state_bits, owned_mask,
                        frontier, stats=stats, budget=budget,
                    )
                    span.set(
                        expanded=result["expanded"],
                        relaxed=result["relaxed"],
                        answers=len(result["answers"]),
                        cross=len(result["cross"]),
                        bounced=result.get("bounced", 0),
                    )
            else:
                result = local_frontier_step(
                    entry.graph, query, alphabet, state_bits, owned_mask,
                    frontier, stats=stats, budget=budget,
                )
        except ValueError as exc:
            raise BadRequestError(str(exc)) from None
        result["op"] = "frontier_step"
        result["graph"] = name
        result["graph_version"] = list(entry.version)
        with self._metrics_lock:
            self.metrics.fold_stats(stats)
        return result

    def _run_rpq(self, graph, query, request: Request, stats, budget=None) -> dict:
        from repro.rpq.evaluation import evaluate_rpq

        source = request.param("source")
        sources = [source] if source is not None else None
        pairs = evaluate_rpq(
            query, graph, sources=sources, stats=stats, budget=budget
        )
        return {
            "op": "rpq",
            "query": query,
            "pairs": sorted(([s, t] for s, t in pairs), key=repr),
            "count": len(pairs),
        }

    def _run_crpq(self, graph, query, request: Request, stats, budget=None) -> dict:
        from repro.crpq.evaluation import evaluate_crpq

        planner = request.param("planner")
        rows = evaluate_crpq(
            query, graph, planner=planner, stats=stats, budget=budget
        )
        return {
            "op": "crpq",
            "query": query,
            "rows": sorted((list(row) for row in rows), key=repr),
            "count": len(rows),
        }

    def _run_dlrpq(self, graph, query, request: Request, stats, budget=None) -> dict:
        from repro.datatests.dlrpq import evaluate_dlrpq

        if not isinstance(graph, PropertyGraph):
            raise BadRequestError(
                "dlrpq queries need a property graph (data tests read "
                "edge properties)"
            )
        source = request.require("source")
        target = request.require("target")
        mode = request.param("mode", "shortest")
        limit = request.param("limit", 1000)
        bindings = []
        try:
            for binding in evaluate_dlrpq(
                query, graph, source, target, mode=mode, limit=limit,
                budget=budget,
            ):
                bindings.append(
                    {
                        "path": list(binding.path.objects),
                        "lists": {
                            str(variable): list(values)
                            for variable, values in binding.mu.items()
                        },
                    }
                )
                if budget is not None:
                    budget.check_rows(len(bindings))
        except BudgetExceeded as exc:
            raise exc.attach_partial(self._capped(bindings, exc, budget))
        return {
            "op": "dlrpq",
            "query": query,
            "bindings": bindings,
            "count": len(bindings),
        }

    def _run_paths(self, graph, query, request: Request, stats, budget=None) -> dict:
        from repro.rpq.path_modes import matching_paths

        source = request.require("source")
        target = request.require("target")
        mode = request.param("mode", "shortest")
        limit = request.param("limit", 1000)
        paths = []
        try:
            for path in matching_paths(
                query, graph, source, target, mode=mode, limit=limit,
                stats=stats, budget=budget,
            ):
                paths.append(list(path.objects))
                if budget is not None:
                    budget.check_rows(len(paths))
        except BudgetExceeded as exc:
            raise exc.attach_partial(self._capped(paths, exc, budget))
        return {
            "op": "paths",
            "query": query,
            "mode": mode,
            "paths": paths,
            "count": len(paths),
        }

    @staticmethod
    def _capped(rows: list, exc: BudgetExceeded, budget) -> list:
        """The rows to attach as the partial result (max_rows trips keep
        exactly the first ``max_rows`` — enumeration order is deterministic
        for path-shaped results)."""
        if budget is not None and exc.limit == "max_rows" and budget.max_rows is not None:
            return rows[: budget.max_rows]
        return rows

    def _run_explain(self, graph, query, request: Request, stats, budget=None) -> dict:
        from repro.engine.explain import explain_query

        planner = request.param("planner", "cost")
        report = explain_query(query, graph, planner=planner)
        return {"op": "explain", "report": report}
