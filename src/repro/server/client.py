"""A small blocking client for the query service.

One socket, JSON lines out, JSON lines in.  This is deliberately the
simplest possible client — synchronous, one request in flight per
connection — because its consumers (tests, ``repro query --connect``, the
``bench_server.py`` load generator, the examples) each drive concurrency by
opening one client per thread.

Typed server errors surface as :class:`ServerError` with the protocol's
error ``code`` intact, so callers can branch on ``overloaded`` vs
``timeout`` vs ``graph_not_found`` without string matching.

**Fault tolerance** (this module's additions for the chaos suite):

* a dead or half-closed connection — EOF where a response line should be,
  a line cut off without its newline, a failed write — raises the typed,
  *retryable* :class:`ConnectionLost` (a ``ConnectionError`` subclass, so
  pre-existing callers keep working);
* an optional :class:`RetryPolicy` retries **idempotent** operations on
  ``ConnectionLost`` (after reconnecting) and on transient server codes
  (``overloaded`` by default), sleeping with capped exponential backoff and
  decorrelated jitter, under a total per-request retry budget.  Mutating
  ops (``graphs.upload``) are never retried automatically.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from dataclasses import dataclass
from typing import Any

from repro.engine.faults import fault_point
from repro.engine.tracing import get_tracer
from repro.errors import ReproError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.server.protocol import decode_response, encode_request

#: Ops safe to retry: they read state or are pure functions of it
#: (``frontier_step`` is a pure function of graph version + frontier).
IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "stats",
        "health",
        "graphs.list",
        "rpq",
        "crpq",
        "dlrpq",
        "paths",
        "explain",
        "frontier_step",
        "cluster_metrics",
    }
)

#: Control-plane ops that answer from in-memory state.  They run under the
#: client's (short) ``control_timeout`` instead of the query timeout, so a
#: wedged worker stalls a health prober for at most the control timeout —
#: never for a full query deadline.
CONTROL_CLIENT_OPS = frozenset({"ping", "health", "cluster_metrics"})


class ServerError(ReproError):
    """A failed response: carries the typed protocol error."""

    def __init__(self, code: str, message: str, details: "dict | None" = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}

    @classmethod
    def from_envelope(cls, error: dict) -> "ServerError":
        return cls(
            error.get("code", "internal"),
            error.get("message", "unknown error"),
            error.get("details"),
        )


class ConnectionLost(ReproError, ConnectionError):
    """The transport died mid-exchange (EOF, truncated line, failed write).

    Typed and retryable: the request may or may not have executed, so the
    automatic retry machinery only fires for :data:`IDEMPOTENT_OPS`.
    Subclasses ``ConnectionError`` so callers written against the plain
    exception keep working.
    """


@dataclass
class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    ``delays()`` yields the sleep before each retry: the first is around
    ``base``, later ones are drawn uniformly from ``[base, 3 * previous]``
    and capped at ``cap`` — the decorrelated-jitter scheme, which spreads
    synchronized retry storms.  The generator stops once the cumulative
    sleep would exceed ``retry_budget`` seconds, bounding the total time a
    request may spend retrying regardless of ``max_attempts``.

    A fixed ``seed`` makes the jitter sequence deterministic (the chaos
    tests pin it); the default seeds from the system RNG.
    """

    max_attempts: int = 4
    base: float = 0.05
    cap: float = 2.0
    retry_budget: float = 5.0
    retry_codes: tuple = ("overloaded",)
    seed: "int | None" = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base <= 0 or self.cap < self.base:
            raise ValueError("need 0 < base <= cap")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")

    def delays(self):
        rng = random.Random(self.seed)
        previous = self.base
        spent = 0.0
        while True:
            delay = min(self.cap, rng.uniform(self.base, previous * 3))
            if spent + delay > self.retry_budget:
                return
            spent += delay
            previous = delay
            yield delay


class ServerClient:
    """A blocking JSON-lines connection to a running query server."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: "RetryPolicy | None" = None,
        control_timeout: "float | None" = 5.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: wall-clock cap for :data:`CONTROL_CLIENT_OPS` (``None`` disables
        #: the override and control ops share the query timeout).
        self.control_timeout = control_timeout
        self.retry = retry
        self.reconnects = 0
        self._generation = -1
        self._connect()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")
        self._broken = False
        # Request ids are scoped to the *connection*: a generation prefix
        # plus a per-connection counter.  Ids from different generations can
        # never collide, so a response buffered by a connection that died
        # mid-exchange can never satisfy (or desync-trip) a request sent on
        # its replacement — the id-mismatch check stays sound across
        # reconnects even when a coordinator pipelines many ops.
        self._generation += 1
        self._ids = itertools.count(1)

    def _next_id(self) -> str:
        return f"c{self._generation}-{next(self._ids)}"

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    def request(self, op: str, **params: Any) -> Any:
        """Send one request, wait for its response, return the result.

        Raises :class:`ServerError` for failed responses and
        :class:`ConnectionLost` when the server hangs up mid-exchange.
        With a :class:`RetryPolicy` installed, idempotent ops retry on
        ``ConnectionLost`` (reconnecting first) and on the policy's
        transient server codes; everything else raises immediately.

        When the calling thread is tracing (an enabled tracer with an
        open span), the request automatically carries a ``trace`` field
        naming that span, so the server's ``server.request`` root becomes
        its remote child.  With tracing off — the default — nothing is
        added: the wire stays byte-identical to the untraced protocol.
        """
        if "trace" not in params:
            context = get_tracer().trace_context()
            if context is not None:
                params["trace"] = context
        policy = self.retry
        if policy is None or op not in IDEMPOTENT_OPS:
            return self._request_once(op, **params)
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(op, **params)
            except ConnectionLost as exc:
                failure = exc
            except ServerError as exc:
                if exc.code not in policy.retry_codes:
                    raise
                failure = exc
            if attempt >= policy.max_attempts:
                raise failure
            delay = next(delays, None)
            if delay is None:  # retry budget exhausted
                raise failure
            time.sleep(delay)
            if isinstance(failure, ConnectionLost):
                try:
                    self._reconnect()
                except OSError as exc:
                    raise ConnectionLost(
                        f"reconnect to {self.host}:{self.port} failed: {exc}"
                    ) from exc

    def _request_once(self, op: str, **params: Any) -> Any:
        # A connection that previously lost sync (a ConnectionLost raised
        # after the request was written) may have a stale response sitting
        # in its buffer — never reuse it.
        if self._broken:
            self._reconnect()
        # Control ops get their own, much shorter wire timeout: a wedged
        # worker must cost a prober ``control_timeout`` seconds, not the
        # full query deadline.  The socket timeout is consulted per
        # recv/send, so flipping it around one exchange is safe.
        wire_timeout = None
        if (
            op in CONTROL_CLIENT_OPS
            and self.control_timeout is not None
            and self.control_timeout < self.timeout
        ):
            wire_timeout = self.control_timeout
        if wire_timeout is not None:
            self._sock.settimeout(wire_timeout)
        try:
            return self._exchange(op, **params)
        finally:
            if wire_timeout is not None and not self._broken:
                self._sock.settimeout(self.timeout)

    def _exchange(self, op: str, **params: Any) -> Any:
        request_id = self._next_id()
        try:
            self._file.write(encode_request(op, id=request_id, **params))
            self._file.flush()
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise self._lost(f"request write failed: {exc}") from exc
        if fault_point("client.read"):
            raise self._lost("injected torn connection before the response")
        try:
            line = self._file.readline()
        except (ConnectionResetError, socket.timeout, OSError) as exc:
            raise self._lost(f"response read failed: {exc}") from exc
        if not line:
            raise self._lost("server closed the connection")
        if not line.endswith(b"\n"):
            # A half-closed connection: the server died mid-line and the
            # socket returned a prefix of the response.
            raise self._lost("connection lost mid-response (truncated line)")
        response = decode_response(line)
        if response.get("id") != request_id:
            raise self._lost(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id!r} (connection desynchronized)"
            )
        if not response.get("ok"):
            raise ServerError.from_envelope(response.get("error", {}))
        return response.get("result")

    def _lost(self, message: str) -> ConnectionLost:
        self._broken = True
        return ConnectionLost(message)

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    @staticmethod
    def _with_limits(params: dict, timeout, max_rows, max_states) -> dict:
        if timeout is not None:
            params["timeout"] = timeout
        if max_rows is not None:
            params["max_rows"] = max_rows
        if max_states is not None:
            params["max_states"] = max_states
        return params

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        """The server's cheap liveness body (uptime, catalog versions,
        in-flight count).  Runs under :attr:`control_timeout`."""
        return self.request("health")

    def abandon(self) -> None:
        """Mark the connection desynchronized; the next request reconnects.

        Hedged reads race one request per replica and take the first
        answer; a loser's response is still in flight on its connection,
        so the connection must never be reused as-is — the stale response
        would satisfy (or desync-trip) the next request.  The server-side
        work keeps running to completion; only the transport is retired.
        """
        self._broken = True

    def list_graphs(self) -> list[dict]:
        return self.request("graphs.list")["graphs"]

    def upload_graph(self, name: str, graph: "EdgeLabeledGraph | dict") -> dict:
        """Catalog ``graph`` (a graph object or serialized document)."""
        if isinstance(graph, EdgeLabeledGraph):
            from repro.graph.serialize import graph_to_dict

            graph = graph_to_dict(graph)
        return self.request("graphs.upload", name=name, graph=graph)

    def mutate(self, graph: str, edits: list) -> dict:
        """Apply in-place edits to a cataloged graph.

        ``edits`` is a list of ``{"kind": "add_node" | "add_edge" |
        "set_property", ...}`` objects.  Deliberately *not* idempotent
        (``add_edge`` ids must be fresh), so it never auto-retries — the
        server flushes its journal before acknowledging, and an unacked
        mutation after a connection loss must be re-inspected, not
        blindly resent.
        """
        return self.request("graphs.mutate", graph=graph, edits=edits)

    def rpq(
        self,
        graph: str,
        query: str,
        source: Any = None,
        *,
        timeout: "float | None" = None,
        max_rows: "int | None" = None,
        max_states: "int | None" = None,
    ) -> dict:
        params: dict = {"graph": graph, "query": query}
        if source is not None:
            params["source"] = source
        return self.request(
            "rpq", **self._with_limits(params, timeout, max_rows, max_states)
        )

    def crpq(
        self,
        graph: str,
        query: str,
        planner: "str | None" = None,
        *,
        timeout: "float | None" = None,
        max_rows: "int | None" = None,
        max_states: "int | None" = None,
    ) -> dict:
        params: dict = {"graph": graph, "query": query}
        if planner is not None:
            params["planner"] = planner
        return self.request(
            "crpq", **self._with_limits(params, timeout, max_rows, max_states)
        )

    def paths(
        self,
        graph: str,
        query: str,
        source: Any,
        target: Any,
        *,
        mode: str = "shortest",
        limit: "int | None" = 1000,
        timeout: "float | None" = None,
        max_rows: "int | None" = None,
        max_states: "int | None" = None,
    ) -> dict:
        params: dict = {
            "graph": graph,
            "query": query,
            "source": source,
            "target": target,
            "mode": mode,
            "limit": limit,
        }
        return self.request(
            "paths", **self._with_limits(params, timeout, max_rows, max_states)
        )

    def dlrpq(
        self,
        graph: str,
        query: str,
        source: Any,
        target: Any,
        *,
        mode: str = "shortest",
        limit: "int | None" = 1000,
        timeout: "float | None" = None,
        max_rows: "int | None" = None,
        max_states: "int | None" = None,
    ) -> dict:
        params: dict = {
            "graph": graph,
            "query": query,
            "source": source,
            "target": target,
            "mode": mode,
            "limit": limit,
        }
        return self.request(
            "dlrpq", **self._with_limits(params, timeout, max_rows, max_states)
        )

    def frontier_step(
        self,
        graph: str,
        query: str,
        *,
        frontier: dict,
        owned: str,
        state_bits: int,
        alphabet: "list | tuple" = (),
        round: "int | None" = None,
        trace: "dict | None" = None,
        timeout: "float | None" = None,
        max_states: "int | None" = None,
    ) -> dict:
        """One shard-side round of the distributed product BFS.

        ``frontier`` is an encoded code->mask document (see
        :mod:`repro.distributed.frontier`), ``owned`` the shard's hex
        ownership mask, ``alphabet`` the *global* label alphabet the
        automaton must be compiled over.  ``round`` (annotation only) and
        an explicit ``trace`` context let the coordinator attribute the
        shard's spans: the coordinator calls this from pool threads whose
        own span stacks are empty, so auto-injection cannot see the round
        span and the context must ride in explicitly.
        """
        params: dict = {
            "graph": graph,
            "query": query,
            "frontier": frontier,
            "owned": owned,
            "state_bits": state_bits,
            "alphabet": list(alphabet),
        }
        if round is not None:
            params["round"] = round
        if trace is not None:
            params["trace"] = trace
        return self.request(
            "frontier_step", **self._with_limits(params, timeout, None, max_states)
        )

    def cluster_metrics(self) -> dict:
        """This server's metrics registry in lossless dump form."""
        return self.request("cluster_metrics")["metrics"]

    def explain(self, graph: str, query: str, planner: str = "cost") -> dict:
        return self.request("explain", graph=graph, query=query, planner=planner)

    def sleep(self, seconds: float) -> dict:
        """Hold an execution slot for ``seconds`` (admission/drain testing)."""
        return self.request("sleep", seconds=seconds)


def http_get(
    host: str, port: int, path: str, timeout: float = 30.0
) -> tuple[int, str]:
    """``(status, body)`` of a GET against the server's HTTP façade."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def http_post_query(
    host: str, port: int, payload: dict, timeout: float = 30.0
) -> tuple[int, dict]:
    """POST one protocol request to ``/query``; ``(status, response dict)``."""
    import http.client
    import json

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload, default=str)
        connection.request(
            "POST", "/query", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()
