"""A small blocking client for the query service.

One socket, JSON lines out, JSON lines in.  This is deliberately the
simplest possible client — synchronous, one request in flight per
connection — because its consumers (tests, ``repro query --connect``, the
``bench_server.py`` load generator, the examples) each drive concurrency by
opening one client per thread.

Typed server errors surface as :class:`ServerError` with the protocol's
error ``code`` intact, so callers can branch on ``overloaded`` vs
``timeout`` vs ``graph_not_found`` without string matching.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any

from repro.errors import ReproError
from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.server.protocol import decode_response, encode_request


class ServerError(ReproError):
    """A failed response: carries the typed protocol error."""

    def __init__(self, code: str, message: str, details: "dict | None" = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}

    @classmethod
    def from_envelope(cls, error: dict) -> "ServerError":
        return cls(
            error.get("code", "internal"),
            error.get("message", "unknown error"),
            error.get("details"),
        )


class ServerClient:
    """A blocking JSON-lines connection to a running query server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> Any:
        """Send one request, wait for its response, return the result.

        Raises :class:`ServerError` for failed responses and
        ``ConnectionError`` when the server hangs up mid-exchange.
        """
        request_id = next(self._ids)
        self._file.write(encode_request(op, id=request_id, **params))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_response(line)
        if not response.get("ok"):
            raise ServerError.from_envelope(response.get("error", {}))
        return response.get("result")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def list_graphs(self) -> list[dict]:
        return self.request("graphs.list")["graphs"]

    def upload_graph(self, name: str, graph: "EdgeLabeledGraph | dict") -> dict:
        """Catalog ``graph`` (a graph object or serialized document)."""
        if isinstance(graph, EdgeLabeledGraph):
            from repro.graph.serialize import graph_to_dict

            graph = graph_to_dict(graph)
        return self.request("graphs.upload", name=name, graph=graph)

    def rpq(self, graph: str, query: str, source: Any = None) -> dict:
        params: dict = {"graph": graph, "query": query}
        if source is not None:
            params["source"] = source
        return self.request("rpq", **params)

    def crpq(self, graph: str, query: str, planner: "str | None" = None) -> dict:
        params: dict = {"graph": graph, "query": query}
        if planner is not None:
            params["planner"] = planner
        return self.request("crpq", **params)

    def dlrpq(
        self,
        graph: str,
        query: str,
        source: Any,
        target: Any,
        *,
        mode: str = "shortest",
        limit: "int | None" = 1000,
    ) -> dict:
        return self.request(
            "dlrpq",
            graph=graph,
            query=query,
            source=source,
            target=target,
            mode=mode,
            limit=limit,
        )

    def explain(self, graph: str, query: str, planner: str = "cost") -> dict:
        return self.request("explain", graph=graph, query=query, planner=planner)

    def sleep(self, seconds: float) -> dict:
        """Hold an execution slot for ``seconds`` (admission/drain testing)."""
        return self.request("sleep", seconds=seconds)


def http_get(
    host: str, port: int, path: str, timeout: float = 30.0
) -> tuple[int, str]:
    """``(status, body)`` of a GET against the server's HTTP façade."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def http_post_query(
    host: str, port: int, payload: dict, timeout: float = 30.0
) -> tuple[int, dict]:
    """POST one protocol request to ``/query``; ``(status, response dict)``."""
    import http.client
    import json

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload, default=str)
        connection.request(
            "POST", "/query", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()
