"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything coming out of the engine with a single except clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph construction or lookup problem (unknown ids, id clashes)."""


class UnknownObjectError(GraphError):
    """An object id was used that is neither a node nor an edge of the graph."""


class DuplicateObjectError(GraphError):
    """An object id was added twice, or reused across the node/edge namespaces."""


class StorageError(ReproError):
    """A durable-store problem (schema mismatch, unknown graph, bad journal)."""


class PathError(ReproError):
    """An invalid path was constructed (bad alternation or incidence)."""


class PathConcatenationError(PathError):
    """Two paths were concatenated whose junction objects are incompatible.

    Following Section 2 of the paper, ``p . q`` is only defined when the last
    object of ``p`` and the first object of ``q`` fit together (edge followed
    by its target node, node followed by an outgoing edge, or an identical
    shared object which is collapsed).
    """


class ParseError(ReproError):
    """A query or expression string could not be parsed."""


class EvaluationError(ReproError):
    """A query is well-formed but cannot be evaluated as requested."""


class InfiniteResultError(EvaluationError):
    """A query under mode ``all`` has infinitely many matching paths.

    The paper discusses this in Sections 3.1.4 and 6.3: without a path mode
    the result of an RPQ with list variables can be infinite on cyclic graphs.
    Engines raise this error rather than looping forever; callers can either
    pick a restrictive path mode or use a limit-bounded enumeration.
    """


class QueryError(ReproError):
    """A query violates a well-formedness condition of its language."""


class VariableError(QueryError):
    """A query uses variables inconsistently (e.g. list/node variable clash,
    or an output variable that does not occur in the body)."""
