"""Enumerating ``SPaths(R)`` with output-linear delay (Section 6.4).

"Since paths can grow arbitrarily long, constant-delay algorithms cannot
exist; output-linear delay algorithms have been studied [41, 84]."  On a
*trimmed* PMR every partial walk extends to an accepted path, so a DFS that
never leaves the trimmed graph spends O(|p|) work between consecutive
outputs — the delay is linear in the size of the path just produced.
Benchmark E23 measures exactly this.

Results are deduplicated on the *projected* base path (set semantics), so
ambiguous representations never emit a path twice; the dedup set is the one
component whose memory grows with the output, as in the cited algorithms'
set-semantics variants.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.graph.paths import Path
from repro.pmr.ops import trim
from repro.pmr.representation import PMR


def enumerate_spaths(
    pmr: PMR,
    limit: "int | None" = None,
    max_length: "int | None" = None,
    order: str = "dfs",
) -> Iterator[Path]:
    """Yield the distinct base paths of ``SPaths(R)``.

    ``order="dfs"`` gives the output-linear-delay traversal;
    ``order="bfs"`` yields paths in non-decreasing length (useful when only
    the shortest few are wanted).  At least one of ``limit`` / ``max_length``
    must bound the enumeration when the PMR is infinite.
    """
    trimmed = trim(pmr)
    if not trimmed.sources or not trimmed.targets:
        return
    emitted: set[Path] = set()

    if order == "bfs":
        queue: deque[tuple] = deque()
        for source in sorted(trimmed.sources, key=repr):
            queue.append((source,))
        while queue:
            objects = queue.popleft()
            node = objects[-1]
            if node in trimmed.targets:
                path = trimmed.project_objects(objects)
                if path not in emitted:
                    emitted.add(path)
                    yield path
                    if limit is not None and len(emitted) >= limit:
                        return
            if max_length is not None and (len(objects) - 1) // 2 >= max_length:
                continue
            for edge in sorted(trimmed.inner.out_edges(node), key=repr):
                queue.append(objects + (edge, trimmed.inner.tgt(edge)))
        return

    if order != "dfs":
        raise ValueError(f"unknown enumeration order {order!r}")

    if limit is None and max_length is None:
        from repro.errors import InfiniteResultError
        from repro.pmr.ops import is_finite

        if not is_finite(trimmed):
            raise InfiniteResultError(
                "this PMR represents infinitely many paths; "
                "pass limit or max_length"
            )

    def emit(objects: tuple) -> Iterator[Path]:
        if objects[-1] in trimmed.targets:
            path = trimmed.project_objects(objects)
            if path not in emitted:
                emitted.add(path)
                yield path

    # Iterative DFS; a frame emits when pushed, never when revisited.
    for source in sorted(trimmed.sources, key=repr):
        yield from emit((source,))
        if limit is not None and len(emitted) >= limit:
            return
        stack: list[tuple] = [
            ((source,), iter(sorted(trimmed.inner.out_edges(source), key=repr)))
        ]
        while stack:
            objects, edges = stack[-1]
            advanced = False
            if max_length is None or (len(objects) - 1) // 2 < max_length:
                for edge in edges:
                    successor = trimmed.inner.tgt(edge)
                    child = objects + (edge, successor)
                    yield from emit(child)
                    if limit is not None and len(emitted) >= limit:
                        return
                    stack.append(
                        (
                            child,
                            iter(
                                sorted(
                                    trimmed.inner.out_edges(successor), key=repr
                                )
                            ),
                        )
                    )
                    advanced = True
                    break
            if not advanced:
                stack.pop()


def enumerate_spaths_delta(
    pmr: PMR,
    limit: "int | None" = None,
    max_length: "int | None" = None,
):
    """Delta enumeration: yield ``(path, shared_prefix_objects)`` pairs.

    Section 7.1 suggests "enumerating only the difference between
    consecutive outputs".  In DFS order, consecutive paths share long
    prefixes; the second component counts how many leading *objects* of the
    path were already part of the previously yielded one, so a consumer can
    re-emit only the suffix.  The total suffix work over the whole
    enumeration is what an incremental client actually pays — experiment
    data shows it is much smaller than re-sending every path whole.
    """
    previous: "Path | None" = None
    for path in enumerate_spaths(pmr, limit=limit, max_length=max_length, order="dfs"):
        if previous is None:
            shared = 0
        else:
            shared = 0
            for left, right in zip(previous.objects, path.objects):
                if left != right:
                    break
                shared += 1
        yield path, shared
        previous = path
