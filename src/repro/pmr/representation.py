"""The PMR data structure (Section 6.4).

``R = (N, E, src, tgt, gamma, S, T)`` over a base graph ``G``: an unlabeled
inner graph, a total homomorphism ``gamma`` mapping inner nodes to base
nodes and inner edges to base edges such that sources and targets commute,
and designated source and target node sets.  Every inner S-to-T path
projects through gamma to a base path; ``SPaths(R)`` is the set of those
projections.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import GraphError
from repro.graph.edge_labeled import EdgeLabeledGraph, ObjectId
from repro.graph.paths import Path

#: Inner edges of a PMR carry this dummy label (PMR graphs are unlabeled).
INNER_LABEL = ""


class PMR:
    """A validated path multiset representation."""

    __slots__ = ("inner", "base", "gamma", "sources", "targets")

    def __init__(
        self,
        inner: EdgeLabeledGraph,
        base: EdgeLabeledGraph,
        gamma: Mapping[ObjectId, ObjectId],
        sources: Iterable[ObjectId],
        targets: Iterable[ObjectId],
    ):
        self.inner = inner
        self.base = base
        self.gamma = dict(gamma)
        self.sources = frozenset(sources)
        self.targets = frozenset(targets)
        self._validate()

    def _validate(self) -> None:
        for node in self.inner.iter_nodes():
            image = self.gamma.get(node)
            if image is None or not self.base.has_node(image):
                raise GraphError(
                    f"gamma does not map inner node {node!r} to a base node"
                )
        for edge in self.inner.iter_edges():
            image = self.gamma.get(edge)
            if image is None or not self.base.has_edge(image):
                raise GraphError(
                    f"gamma does not map inner edge {edge!r} to a base edge"
                )
            src, tgt = self.inner.endpoints(edge)
            if self.base.src(image) != self.gamma[src]:
                raise GraphError(
                    f"gamma breaks src-commutation on inner edge {edge!r}"
                )
            if self.base.tgt(image) != self.gamma[tgt]:
                raise GraphError(
                    f"gamma breaks tgt-commutation on inner edge {edge!r}"
                )
        stray = (self.sources | self.targets) - self.inner.nodes
        if stray:
            raise GraphError(f"source/target nodes not in the inner graph: {stray!r}")

    # ------------------------------------------------------------------
    def project_path(self, inner_path: Path) -> Path:
        """``gamma(rho)`` — map an inner path to the base path it denotes."""
        return Path(
            self.base, tuple(self.gamma[obj] for obj in inner_path.objects)
        )

    def project_objects(self, inner_objects: tuple) -> Path:
        """Project a raw inner object tuple (avoids building the inner Path)."""
        return Path(self.base, tuple(self.gamma[obj] for obj in inner_objects))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PMR inner_nodes={self.inner.num_nodes} "
            f"inner_edges={self.inner.num_edges} "
            f"sources={len(self.sources)} targets={len(self.targets)}>"
        )

    @classmethod
    def build(
        cls,
        base: EdgeLabeledGraph,
        nodes: Iterable[tuple[ObjectId, ObjectId]],
        edges: Iterable[tuple[ObjectId, ObjectId, ObjectId, ObjectId]],
        sources: Iterable[ObjectId],
        targets: Iterable[ObjectId],
    ) -> "PMR":
        """Convenience constructor.

        ``nodes`` are ``(inner_id, base_node)`` pairs; ``edges`` are
        ``(inner_id, inner_src, inner_tgt, base_edge)`` quadruples — this is
        the textual format the paper's Section 6.4 figure uses (inner object
        annotated with its gamma image).
        """
        inner = EdgeLabeledGraph()
        gamma: dict = {}
        for inner_id, base_node in nodes:
            inner.add_node(inner_id)
            gamma[inner_id] = base_node
        for inner_id, inner_src, inner_tgt, base_edge in edges:
            inner.add_edge(inner_id, inner_src, inner_tgt, INNER_LABEL)
            gamma[inner_id] = base_edge
        return cls(inner, base, gamma, sources, targets)
