"""Operations on PMRs: trimming, finiteness, counting, membership."""

from __future__ import annotations

from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.graph.paths import Path
from repro.pmr.representation import INNER_LABEL, PMR


def _closure(graph: EdgeLabeledGraph, seeds, forward: bool) -> set:
    seen = {node for node in seeds if graph.has_node(node)}
    frontier = list(seen)
    while frontier:
        node = frontier.pop()
        neighbours = (
            graph.successors(node) if forward else graph.predecessors(node)
        )
        for neighbour in neighbours:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


def trim(pmr: PMR) -> PMR:
    """Restrict to inner nodes on some source-to-target path.

    Trimming never changes ``SPaths`` and is what makes enumeration delays
    output-linear: every step of a walk in a trimmed PMR can be completed to
    an accepted path.
    """
    useful = _closure(pmr.inner, pmr.sources, True) & _closure(
        pmr.inner, pmr.targets, False
    )
    inner = EdgeLabeledGraph()
    gamma: dict = {}
    for node in useful:
        inner.add_node(node)
        gamma[node] = pmr.gamma[node]
    for edge in pmr.inner.iter_edges():
        src, tgt = pmr.inner.endpoints(edge)
        if src in useful and tgt in useful:
            inner.add_edge(edge, src, tgt, INNER_LABEL)
            gamma[edge] = pmr.gamma[edge]
    return PMR(
        inner,
        pmr.base,
        gamma,
        pmr.sources & useful,
        pmr.targets & useful,
    )


def is_finite(pmr: PMR) -> bool:
    """Whether ``SPaths(R)`` is finite (no cycle in the trimmed inner graph).

    The Figure 3 cycles PMR is infinite; the Figure 5 PMR is finite (2^n
    paths).
    """
    trimmed = trim(pmr)
    graph = trimmed.inner
    color: dict = {}
    for start in graph.iter_nodes():
        if color.get(start, 0):
            continue
        stack = [(start, iter(graph.successors(start)))]
        color[start] = 1
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                mark = color.get(successor, 0)
                if mark == 1:
                    return False
                if mark == 0:
                    color[successor] = 1
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return True


def pmr_size(pmr: PMR) -> int:
    """|N| + |E| of the inner graph — the space measure of Section 6.4."""
    return pmr.inner.num_nodes + pmr.inner.num_edges


def count_paths_of_length(pmr: PMR, length: int) -> int:
    """The number of *distinct base paths* of the given length in SPaths.

    Note the set semantics: several inner paths may project to the same
    base path, so counting runs over projected prefixes, not inner
    configurations alone.
    """
    trimmed = trim(pmr)
    # Subset construction over the base-edge alphabet: every distinct base
    # path drives a unique subset sequence, and distinct paths reaching the
    # same subset are kept apart by *counting* subsets, not just tracking
    # them.
    start_by_base: dict = {}
    for source in trimmed.sources:
        start_by_base.setdefault(trimmed.gamma[source], set()).add(source)
    counts: dict = {}
    for inner_nodes in start_by_base.values():
        subset = frozenset(inner_nodes)
        counts[subset] = counts.get(subset, 0) + 1
    for _ in range(length):
        next_counts: dict = {}
        for subset, count in counts.items():
            moves: dict = {}
            for node in subset:
                for edge in trimmed.inner.out_edges(node):
                    base_edge = trimmed.gamma[edge]
                    moves.setdefault(base_edge, set()).add(trimmed.inner.tgt(edge))
            for successor_nodes in moves.values():
                successor = frozenset(successor_nodes)
                next_counts[successor] = next_counts.get(successor, 0) + count
        counts = next_counts
    return sum(
        count for subset, count in counts.items() if subset & trimmed.targets
    )


def contains_path(pmr: PMR, path: Path) -> bool:
    """Whether a base path belongs to ``SPaths(R)`` (a simple DP).

    The path must be node-to-node (inner paths always are, since PMR
    sources/targets are nodes).
    """
    if path.is_empty or path.starts_with_edge or path.ends_with_edge:
        return False
    objects = path.objects
    current = {
        node
        for node in pmr.sources
        if pmr.gamma[node] == objects[0]
    }
    index = 1
    while index < len(objects):
        base_edge, base_node = objects[index], objects[index + 1]
        next_current = set()
        for node in current:
            for edge in pmr.inner.out_edges(node):
                if pmr.gamma[edge] == base_edge:
                    target = pmr.inner.tgt(edge)
                    if pmr.gamma[target] == base_node:
                        next_current.add(target)
        current = next_current
        if not current:
            return False
        index += 2
    return bool(current & pmr.targets)
