"""Constructing PMRs from query evaluation (Section 6.4).

"PMRs are closely related to the product graph" — and indeed the PMR of an
RPQ's matching paths *is* the trimmed product graph with gamma the
projection.  This is the pre-processing step of the enumeration algorithms
the paper cites ([41, 84]).
"""

from __future__ import annotations

from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.pmr.ops import trim
from repro.pmr.representation import INNER_LABEL, PMR
from repro.rpq.evaluation import compile_for_graph
from repro.rpq.product_graph import ProductGraph, build_product


def pmr_from_product(product: ProductGraph) -> PMR:
    """View a (trimmed) product graph as a PMR via first-component
    projection."""
    trimmed_product = product.trim()
    inner = EdgeLabeledGraph()
    gamma: dict = {}
    for node in trimmed_product.graph.iter_nodes():
        inner.add_node(node)
        gamma[node] = node[0]
    for edge in trimmed_product.graph.iter_edges():
        src, tgt = trimmed_product.graph.endpoints(edge)
        inner.add_edge(edge, src, tgt, INNER_LABEL)
        gamma[edge] = edge[0]
    return PMR(
        inner,
        trimmed_product.base,
        gamma,
        trimmed_product.sources,
        trimmed_product.targets,
    )


def pmr_for_rpq(
    query,
    graph: EdgeLabeledGraph,
    source,
    target,
) -> PMR:
    """The PMR representing all matching paths of an RPQ between two nodes.

    For the Figure 5 graph and ``a*`` this is the O(n)-size representation
    of 2^n paths; for cyclic matches it is a finite representation of an
    infinite path set (the Mike-to-Mike cycles example).
    """
    nfa = compile_for_graph(query, graph) if not hasattr(query, "initial") else query
    product = build_product(graph, nfa, sources=[source], targets=[target])
    return trim(pmr_from_product(product))


def pmr_for_unblocked_cycles(graph, account: str = "a3") -> PMR:
    """The paper's Section 6.4 example: all transfer cycles from Mike's
    account back to itself that never pass through a blocked account.

    "Never pass through a blocked account" restricts the graph to unblocked
    accounts before building the product — on Figure 3 the result is the
    single t7-t4-t1 loop, a finite PMR for infinitely many cycles.
    """
    unblocked = EdgeLabeledGraph()
    for node in graph.iter_nodes():
        if graph.get_property(node, "isBlocked") == "no":
            unblocked.add_node(node)
    for edge in graph.iter_edges():
        if graph.label(edge) != "Transfer":
            continue
        src, tgt = graph.endpoints(edge)
        if unblocked.has_node(src) and unblocked.has_node(tgt):
            unblocked.add_edge(edge, src, tgt, "Transfer")
    return pmr_for_rpq("Transfer.Transfer*", unblocked, account, account)
