"""Path multiset representations — PMRs (Section 6.4, [84]).

A PMR represents a (possibly infinite) set of paths of a graph ``G``
succinctly: it is a graph of its own, a homomorphism ``gamma`` into ``G``,
and source/target node sets; the represented paths are the images of its
source-to-target paths.  The paper's two showcase facts, reproduced by
experiments E16/E22:

* the 2^n paths of the Figure 5 graph have a PMR of size O(n);
* the *infinitely many* unblocked Mike-to-Mike transfer cycles of Figure 3
  have a finite PMR (one loop).

Following the paper, we use the set-semantics reading of PMRs
(``SPaths``).
"""

from repro.pmr.representation import PMR
from repro.pmr.build import pmr_for_rpq, pmr_from_product
from repro.pmr.ops import (
    contains_path,
    count_paths_of_length,
    is_finite,
    pmr_size,
    trim,
)
from repro.pmr.enumerate import enumerate_spaths, enumerate_spaths_delta

__all__ = [
    "PMR",
    "pmr_from_product",
    "pmr_for_rpq",
    "trim",
    "is_finite",
    "pmr_size",
    "contains_path",
    "count_paths_of_length",
    "enumerate_spaths",
    "enumerate_spaths_delta",
]
