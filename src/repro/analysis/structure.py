"""Structural parameters of CRPQs (Section 7.1, "Parametrized Complexity").

The tractability line the paper surveys — Yannakakis for acyclic queries,
bounded (semantic) treewidth beyond — is driven by the *query graph*: one
vertex per variable, one edge per atom between its endpoint variables.
This module computes that graph, decides acyclicity, and computes treewidth
exactly for small queries (dynamic programming over vertex subsets) with a
min-fill greedy upper bound as the scalable fallback.

Semantic treewidth (the minimum over equivalent queries, [16, 99, 42, 46])
is approximated from above by first pruning atoms that are redundant under
the sound containment test of :mod:`repro.analysis.containment`.
"""

from __future__ import annotations

from itertools import combinations

from repro.crpq.ast import CRPQ, Var


def query_graph(query: CRPQ) -> dict:
    """The (undirected) query graph: variable -> set of neighbour variables.

    Constants do not appear; a self-loop atom contributes no edge.  Every
    variable appears as a key even when isolated.
    """
    adjacency: dict = {}
    for atom in query.atoms:
        for term in (atom.left, atom.right):
            if isinstance(term, Var):
                adjacency.setdefault(term, set())
        if isinstance(atom.left, Var) and isinstance(atom.right, Var):
            if atom.left != atom.right:
                adjacency[atom.left].add(atom.right)
                adjacency[atom.right].add(atom.left)
    return adjacency


def is_acyclic_crpq(query: CRPQ) -> bool:
    """Whether the query graph is a forest (binary atoms: acyclicity of the
    hypergraph coincides with the graph being cycle-free, counting
    multi-edges between the same pair only once)."""
    adjacency = query_graph(query)
    visited: set = set()
    for root in adjacency:
        if root in visited:
            continue
        stack = [(root, None)]
        visited.add(root)
        while stack:
            node, parent = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour == parent:
                    continue
                if neighbour in visited:
                    return False
                visited.add(neighbour)
                stack.append((neighbour, node))
    return True


def _eliminate(adjacency: dict, order) -> int:
    """The width of an elimination order (max clique size - 1 induced)."""
    graph = {node: set(neighbours) for node, neighbours in adjacency.items()}
    width = 0
    for node in order:
        neighbours = graph[node]
        width = max(width, len(neighbours))
        for left, right in combinations(neighbours, 2):
            graph[left].add(right)
            graph[right].add(left)
        for neighbour in neighbours:
            graph[neighbour].discard(node)
        del graph[node]
    return width


def treewidth_greedy(query: "CRPQ | dict") -> int:
    """A min-fill greedy upper bound on the treewidth of the query graph."""
    adjacency = query_graph(query) if isinstance(query, CRPQ) else query
    graph = {node: set(neighbours) for node, neighbours in adjacency.items()}
    order = []
    while graph:
        def fill_in(node) -> int:
            neighbours = graph[node]
            return sum(
                1
                for left, right in combinations(neighbours, 2)
                if right not in graph[left]
            )

        best = min(graph, key=lambda node: (fill_in(node), len(graph[node]), repr(node)))
        order.append(best)
        neighbours = graph[best]
        for left, right in combinations(neighbours, 2):
            graph[left].add(right)
            graph[right].add(left)
        for neighbour in neighbours:
            graph[neighbour].discard(best)
        del graph[best]
    return _eliminate(adjacency, order) if order else 0


def treewidth_exact(query: "CRPQ | dict", max_vars: int = 14) -> int:
    """Exact treewidth via the Held-Karp-style subset DP (QuickBB family).

    Exponential in the number of variables; refuses beyond ``max_vars``
    (use :func:`treewidth_greedy` there).
    """
    adjacency = query_graph(query) if isinstance(query, CRPQ) else query
    nodes = sorted(adjacency, key=repr)
    n = len(nodes)
    if n == 0:
        return 0
    if n > max_vars:
        raise ValueError(
            f"{n} variables exceeds max_vars={max_vars}; use treewidth_greedy"
        )
    index = {node: i for i, node in enumerate(nodes)}
    neighbour_bits = [0] * n
    for node, neighbours in adjacency.items():
        for other in neighbours:
            neighbour_bits[index[node]] |= 1 << index[other]

    # dp[S] = minimal width of an elimination order for the subset S,
    # eliminating S first (in some order) from the full graph.
    # Classic recurrence: Q(S, v) = neighbours of v reachable via S.
    from functools import lru_cache

    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def q(subset: int, vertex: int) -> int:
        """|N(v) through subset|: neighbours of v outside subset reachable
        by paths whose interior lies in subset."""
        seen = 1 << vertex
        frontier = [vertex]
        reachable = 0
        while frontier:
            current = frontier.pop()
            bits = neighbour_bits[current]
            while bits:
                low = bits & -bits
                bits ^= low
                other = low.bit_length() - 1
                if seen & (1 << other):
                    continue
                seen |= 1 << other
                if subset & (1 << other):
                    frontier.append(other)
                else:
                    reachable += 1
        return reachable

    @lru_cache(maxsize=None)
    def dp(subset: int) -> int:
        if subset == 0:
            return -1  # width of the empty elimination
        best = n
        bits = subset
        while bits:
            low = bits & -bits
            bits ^= low
            vertex = low.bit_length() - 1
            rest = subset ^ low
            candidate = max(dp(rest), q(rest, vertex))
            if candidate < best:
                best = candidate
        return best

    return dp(full)
