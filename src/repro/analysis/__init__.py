"""Static analysis of graph queries (Section 7.1).

The paper lists query containment as "the fundamental static analysis
problem" and parametrized complexity (semantic treewidth, acyclicity) as
the road toward tractable CRPQ evaluation.  This package provides:

* :mod:`~repro.analysis.containment` — exact RPQ containment/equivalence
  via automata (the classical PSPACE procedure, fine at query scale), plus
  a sound homomorphism-based containment test for CRPQs;
* :mod:`~repro.analysis.structure` — the query graph of a CRPQ, GYO-style
  acyclicity, and treewidth (exact for small queries, greedy upper bound
  otherwise) — the parameters behind the Section 7.1 tractability story.
"""

from repro.analysis.containment import (
    crpq_contained_sound,
    rpq_contained,
    rpq_equivalent,
)
from repro.analysis.structure import (
    is_acyclic_crpq,
    query_graph,
    treewidth_exact,
    treewidth_greedy,
)

__all__ = [
    "rpq_contained",
    "rpq_equivalent",
    "crpq_contained_sound",
    "query_graph",
    "is_acyclic_crpq",
    "treewidth_exact",
    "treewidth_greedy",
]
