"""Query containment (Section 7.1, "Static Analysis").

RPQ containment is language inclusion of the defining expressions —
decidable (PSPACE-complete in general) and, for the expression sizes that
occur in queries, perfectly practical with the textbook automata procedure:
``L(R1) ⊆ L(R2)`` iff ``L(R1) ∩ complement(L(R2))`` is empty.

CRPQ containment is harder (EXPSPACE-complete, [23, 44, 45, 48]); we
provide the classical *sound* sufficient condition: a containment mapping
from the atoms of the container to the atoms of the containee whose
per-atom expressions are language-contained.  It never errs when it says
"contained", and the tests document a case where it is incomplete.
"""

from __future__ import annotations

from repro.automata.dfa import complement, determinize, intersect, is_empty_dfa
from repro.automata.glushkov import glushkov
from repro.crpq.ast import CRPQ, Var
from repro.regex.ast import Regex, has_wildcard, symbols
from repro.regex.parser import parse_regex


def _as_regex(query) -> Regex:
    return parse_regex(query) if isinstance(query, str) else query


def rpq_contained(left, right, alphabet=None) -> bool:
    """Whether ``L(left) ⊆ L(right)``.

    ``alphabet`` defaults to the labels of both expressions; it must be
    supplied when wildcards are involved, because ``!S`` means different
    languages over different alphabets (Remark 11).
    """
    left_regex, right_regex = _as_regex(left), _as_regex(right)
    if alphabet is None:
        if has_wildcard(left_regex) or has_wildcard(right_regex):
            raise ValueError("wildcard expressions need an explicit alphabet")
        alphabet = symbols(left_regex) | symbols(right_regex)
    sigma = frozenset(alphabet)
    left_dfa = determinize(glushkov(left_regex, sigma).trim(), sigma)
    right_dfa = determinize(glushkov(right_regex, sigma).trim(), sigma)
    return is_empty_dfa(intersect(left_dfa, complement(right_dfa)))


def rpq_equivalent(left, right, alphabet=None) -> bool:
    """Whether the two RPQs define the same language."""
    return rpq_contained(left, right, alphabet) and rpq_contained(
        right, left, alphabet
    )


def crpq_contained_sound(container: "CRPQ | str", containee: "CRPQ | str") -> bool:
    """A sound (incomplete) test for ``containee ⊆ container``.

    Searches for a *containment mapping*: a variable mapping ``h`` from the
    container's variables to the containee's terms such that

    * head variables map to the corresponding head variables, and
    * for every container atom ``R(u, v)`` there is a containee atom
      ``R'(h(u), h(v))`` with ``L(R') ⊆ L(R)``.

    If such a mapping exists then every answer of the containee is an
    answer of the container (fold the homomorphism through the node
    homomorphism semantics).  The converse fails in general because one
    container atom may be witnessed by a *composition* of containee atoms —
    full CRPQ containment needs automata over expansions and is
    EXPSPACE-complete.
    """
    from repro.crpq.ast import parse_crpq

    if isinstance(container, str):
        container = parse_crpq(container)
    if isinstance(containee, str):
        containee = parse_crpq(containee)
    if len(container.head) != len(containee.head):
        return False

    alphabet = frozenset()
    for query in (container, containee):
        for atom in query.atoms:
            alphabet |= symbols(atom.regex)

    # precompute pairwise language containment between atom expressions
    def lang_contained(smaller: Regex, bigger: Regex) -> bool:
        return rpq_contained(smaller, bigger, alphabet=alphabet or {"#"})

    mapping: dict = {}
    for container_var, containee_var in zip(container.head, containee.head):
        existing = mapping.get(container_var)
        if existing is not None and existing != containee_var:
            return False
        mapping[container_var] = containee_var

    atoms = list(container.atoms)

    def assign(term, value, current: dict) -> "dict | None":
        if isinstance(term, Var):
            bound = current.get(term)
            if bound is None:
                extended = dict(current)
                extended[term] = value
                return extended
            return current if bound == value else None
        # container constants must map to the same constant
        return current if term == value else None

    def search(index: int, current: dict) -> bool:
        if index == len(atoms):
            return True
        atom = atoms[index]
        for candidate in containee.atoms:
            if not lang_contained(candidate.regex, atom.regex):
                continue
            step = assign(atom.left, candidate.left, current)
            if step is None:
                continue
            step = assign(atom.right, candidate.right, step)
            if step is None:
                continue
            if search(index + 1, step):
                return True
        return False

    return search(0, mapping)
