"""A relational algebra expression language with an evaluator.

CoreGQL is "the set of relational algebra queries over all relations
R^pi_Omega" (Section 4.1.3); this module supplies the algebra as a small
expression AST evaluated against a catalog of named relations.  Selection
conditions compare attributes with attributes or constants and close under
and/or/not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import QueryError
from repro.relalg.relation import Relation


class Condition:
    """Base class for selection conditions."""

    __slots__ = ()

    def __call__(self, row: dict) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


def _apply(op: str, left, right) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class AttrCompare(Condition):
    """``left op right`` where both sides are attribute names."""

    left: object
    op: str
    right: object

    def __call__(self, row: dict) -> bool:
        if self.left not in row or self.right not in row:
            raise QueryError(f"attribute missing for {self!r} in {sorted(row)!r}")
        return _apply(self.op, row[self.left], row[self.right])


@dataclass(frozen=True)
class AttrConst(Condition):
    """``attr op constant``."""

    attr: object
    op: str
    value: object

    def __call__(self, row: dict) -> bool:
        if self.attr not in row:
            raise QueryError(f"attribute missing for {self!r} in {sorted(row)!r}")
        return _apply(self.op, row[self.attr], self.value)


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition

    def __call__(self, row: dict) -> bool:
        return self.left(row) and self.right(row)


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition

    def __call__(self, row: dict) -> bool:
        return self.left(row) or self.right(row)


@dataclass(frozen=True)
class Not(Condition):
    inner: Condition

    def __call__(self, row: dict) -> bool:
        return not self.inner(row)


# ----------------------------------------------------------------------
# algebra expressions
# ----------------------------------------------------------------------
class AlgebraExpr:
    """Base class for relational algebra expressions."""

    __slots__ = ()

    def join(self, other: "AlgebraExpr") -> "AlgebraExpr":
        return Join(self, other)

    def project(self, *attributes) -> "AlgebraExpr":
        return Projection(self, tuple(attributes))

    def where(self, condition: Condition) -> "AlgebraExpr":
        return Selection(self, condition)


@dataclass(frozen=True)
class RelRef(AlgebraExpr):
    """A reference to a named relation in the catalog."""

    name: object


@dataclass(frozen=True)
class Projection(AlgebraExpr):
    inner: AlgebraExpr
    attributes: tuple


@dataclass(frozen=True)
class Selection(AlgebraExpr):
    inner: AlgebraExpr
    condition: Condition


@dataclass(frozen=True)
class Join(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True)
class UnionExpr(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True)
class Difference(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True)
class Rename(AlgebraExpr):
    inner: AlgebraExpr
    mapping: tuple  # tuple of (old, new) pairs, hashable


def evaluate_algebra(
    expr: AlgebraExpr, catalog: Mapping[object, Relation]
) -> Relation:
    """Evaluate an algebra expression against named relations.

    The catalog may also map names lazily (anything with ``__getitem__``),
    which is how CoreGQL materializes pattern relations on demand.
    """
    if isinstance(expr, RelRef):
        try:
            return catalog[expr.name]
        except KeyError:
            raise QueryError(f"unknown relation {expr.name!r}") from None
    if isinstance(expr, Projection):
        return evaluate_algebra(expr.inner, catalog).project(expr.attributes)
    if isinstance(expr, Selection):
        return evaluate_algebra(expr.inner, catalog).select(expr.condition)
    if isinstance(expr, Join):
        return evaluate_algebra(expr.left, catalog).natural_join(
            evaluate_algebra(expr.right, catalog)
        )
    if isinstance(expr, UnionExpr):
        return evaluate_algebra(expr.left, catalog).union(
            evaluate_algebra(expr.right, catalog)
        )
    if isinstance(expr, Difference):
        return evaluate_algebra(expr.left, catalog).difference(
            evaluate_algebra(expr.right, catalog)
        )
    if isinstance(expr, Rename):
        return evaluate_algebra(expr.inner, catalog).rename(dict(expr.mapping))
    if isinstance(expr, Relation):  # allow inlining literal relations
        return expr
    raise TypeError(f"not an algebra expression: {expr!r}")
