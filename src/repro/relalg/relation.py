"""First-normal-form relations with set semantics.

A :class:`Relation` is an ordered tuple of attribute names plus a frozen set
of equally-long value tuples.  All operations return new relations; nothing
is mutated.  Attributes are compared by name for natural joins, exactly as
in the classical relational algebra the paper takes as CoreGQL's outer
layer.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping

from repro.errors import QueryError

Attribute = Hashable
Row = tuple


class Relation:
    """An immutable 1NF relation."""

    __slots__ = ("attributes", "rows")

    def __init__(
        self, attributes: Iterable[Attribute], rows: Iterable[Row] = ()
    ):
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise QueryError(f"duplicate attributes in {self.attributes!r}")
        frozen = set()
        width = len(self.attributes)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise QueryError(
                    f"row {row!r} does not match attributes {self.attributes!r}"
                )
            frozen.add(row)
        self.rows = frozenset(frozen)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self.rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes == other.attributes:
            return self.rows == other.rows
        if set(self.attributes) != set(other.attributes):
            return False
        # same attributes in a different order: compare reordered
        return self.rows == other.project(self.attributes).rows

    def __hash__(self) -> int:
        return hash((frozenset(self.attributes), self.rows))

    def __repr__(self) -> str:
        return f"Relation({list(self.attributes)!r}, {len(self.rows)} rows)"

    def _index_of(self, attribute: Attribute) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise QueryError(
                f"unknown attribute {attribute!r} (have {self.attributes!r})"
            ) from None

    def column(self, attribute: Attribute) -> set:
        """The set of values in one column."""
        index = self._index_of(attribute)
        return {row[index] for row in self.rows}

    def as_dicts(self) -> list[dict]:
        """Rows as attribute->value dictionaries (sorted for determinism)."""
        return [
            dict(zip(self.attributes, row))
            for row in sorted(self.rows, key=repr)
        ]

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def project(self, attributes: Iterable[Attribute]) -> "Relation":
        """pi_{attributes} — duplicates collapse under set semantics."""
        attributes = tuple(attributes)
        indices = [self._index_of(attribute) for attribute in attributes]
        return Relation(
            attributes, {tuple(row[i] for i in indices) for row in self.rows}
        )

    def select(self, predicate: Callable[[dict], bool]) -> "Relation":
        """sigma_{predicate} — the predicate sees a dict view of each row."""
        kept = []
        for row in self.rows:
            if predicate(dict(zip(self.attributes, row))):
                kept.append(row)
        return Relation(self.attributes, kept)

    def rename(self, mapping: Mapping[Attribute, Attribute]) -> "Relation":
        """rho — rename attributes (unmentioned ones stay)."""
        new_attributes = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(new_attributes, self.rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """The natural join on shared attribute names.

        With no shared attributes this degenerates to the cartesian product,
        as usual.
        """
        shared = [a for a in self.attributes if a in other.attributes]
        other_only = [a for a in other.attributes if a not in shared]
        result_attributes = self.attributes + tuple(other_only)

        self_shared_idx = [self._index_of(a) for a in shared]
        other_shared_idx = [other._index_of(a) for a in shared]
        other_only_idx = [other._index_of(a) for a in other_only]

        by_key: dict = {}
        for row in other.rows:
            key = tuple(row[i] for i in other_shared_idx)
            by_key.setdefault(key, []).append(row)

        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in self_shared_idx)
            for other_row in by_key.get(key, ()):
                rows.append(row + tuple(other_row[i] for i in other_only_idx))
        return Relation(result_attributes, rows)

    def _check_union_compatible(self, other: "Relation") -> "Relation":
        if self.attributes == other.attributes:
            return other
        if set(self.attributes) == set(other.attributes):
            return other.project(self.attributes)
        raise QueryError(
            f"incompatible schemas {self.attributes!r} vs {other.attributes!r}"
        )

    def union(self, other: "Relation") -> "Relation":
        other = self._check_union_compatible(other)
        return Relation(self.attributes, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        other = self._check_union_compatible(other)
        return Relation(self.attributes, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        other = self._check_union_compatible(other)
        return Relation(self.attributes, self.rows & other.rows)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, attributes: Iterable[Attribute], dict_rows: Iterable[Mapping]
    ) -> "Relation":
        attributes = tuple(attributes)
        return cls(
            attributes,
            [tuple(row[a] for a in attributes) for row in dict_rows],
        )

    @classmethod
    def empty(cls, attributes: Iterable[Attribute]) -> "Relation":
        return cls(attributes, ())
