"""First-normal-form relations and relational algebra (Section 4.1).

CoreGQL's third component is "relational algebra as such a language" over
the relations extracted from graphs by pattern matching.  Relations here are
first-normal-form by construction: named attributes, atomic values, no
nulls, set semantics (no duplicates) — matching the paper's requirement that
pattern outputs be 1NF relations [28].
"""

from repro.relalg.relation import Relation
from repro.relalg.algebra import (
    AttrCompare,
    AttrConst,
    And,
    Difference,
    Join,
    Not,
    Or,
    Projection,
    RelRef,
    Rename,
    Selection,
    UnionExpr,
    evaluate_algebra,
)

__all__ = [
    "Relation",
    "RelRef",
    "Projection",
    "Selection",
    "Join",
    "UnionExpr",
    "Difference",
    "Rename",
    "AttrCompare",
    "AttrConst",
    "And",
    "Or",
    "Not",
    "evaluate_algebra",
]
