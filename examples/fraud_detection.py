"""Fraud-style analytics on a synthetic transfer network.

The paper's running example is a bank graph; this script scales it up with
:func:`repro.graph.generators.random_transfer_network` and runs the kinds
of investigative queries the intro motivates:

* cycles of transfers returning to a suspicious account (PMRs keep the
  infinitely many cycles representable);
* chains of increasing-date transfers (dl-RPQs, Example 21 style);
* money reaching blocked accounts (dl-CRPQ joins);
* structuring: paths made of many small transfers (data filters).

Run with::

    python examples/fraud_detection.py
"""

from repro.datatests.dlcrpq import evaluate_dlcrpq
from repro.datatests.dlrpq import evaluate_dlrpq
from repro.graph.generators import random_transfer_network
from repro.pmr.build import pmr_for_rpq
from repro.pmr.enumerate import enumerate_spaths
from repro.pmr.ops import is_finite, pmr_size
from repro.rpq.evaluation import reachable_by_rpq


def main() -> None:
    graph = random_transfer_network(accounts=40, transfers=160, seed=2025)
    print(f"network: {graph.num_nodes} accounts, {graph.num_edges} transfers")

    suspect = "a0"
    print(f"\n== Where can money from {suspect} end up? ==")
    reachable = reachable_by_rpq("Transfer+", graph, suspect)
    blocked = {
        node
        for node in reachable
        if graph.get_property(node, "isBlocked") == "yes"
    }
    print(f"{len(reachable)} accounts reachable, {len(blocked)} of them blocked")

    print(f"\n== Transfer cycles back to {suspect} (PMR) ==")
    pmr = pmr_for_rpq("Transfer+", graph, suspect, suspect)
    print(
        f"cycle PMR: size {pmr_size(pmr)}, "
        f"{'infinitely many' if not is_finite(pmr) else 'finitely many'} cycles"
    )
    for path in enumerate_spaths(pmr, limit=3, order="bfs"):
        print("  shortest cycles first:", path.edges())

    print("\n== Chronologically consistent transfer chains (dl-RPQ) ==")
    increasing = "[Transfer^z][x := date] ( (_)[Transfer^z][date > x][x := date] )*"
    chains = 0
    longest: tuple = ()
    for target in sorted(reachable, key=repr)[:10]:
        for binding in evaluate_dlrpq(
            increasing, graph, suspect, target, mode="simple", limit=50
        ):
            chains += 1
            if len(binding.mu["z"]) > len(longest):
                longest = binding.mu["z"]
    print(f"{chains} date-increasing chains found; longest: {longest}")

    print("\n== Structuring: chains of small transfers into blocked accounts ==")
    q = (
        "q(x, y, z) :- simple (_) [Transfer^z][amount < 2000000]"
        "( (_)[Transfer^z][amount < 2000000] )* (_)(x, y), "
        "(isBlocked = 'yes')(y, y)"
    )
    rows = evaluate_dlcrpq(q, graph, limit=200)
    print(f"{len(rows)} (source, blocked target, transfer list) rows; sample:")
    for row in sorted(rows, key=repr)[:5]:
        print("  ", row)


if __name__ == "__main__":
    main()
