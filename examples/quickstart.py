"""Quickstart: the paper's bank graphs and every query language in 5 minutes.

Run with::

    python examples/quickstart.py
"""

from repro.crpq.evaluation import evaluate_crpq
from repro.datatests.dlrpq import evaluate_dlrpq
from repro.graph.datasets import figure2_graph, figure3_graph
from repro.listvars.lcrpq import evaluate_lcrpq
from repro.rpq.evaluation import evaluate_rpq, rpq_holds
from repro.rpq.path_modes import matching_paths


def main() -> None:
    fig2 = figure2_graph()
    fig3 = figure3_graph()

    print("== RPQs (Section 3.1.1) ==")
    pairs = evaluate_rpq("Transfer*", fig2)
    print(f"Transfer* relates {len(pairs)} node pairs (Example 12)")
    print("a1 can reach a6 by transfers:", rpq_holds("Transfer+", fig2, "a1", "a6"))

    print("\n== CRPQs (Section 3.1.2, Example 13) ==")
    triangles = evaluate_crpq(
        "q1(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)",
        fig2,
    )
    print("transfer triangles:", sorted(triangles))

    print("\n== Path modes (Section 3.1.5) ==")
    for path in matching_paths("Transfer+", fig3, "a3", "a5", mode="simple"):
        print("simple Mike->Rebecca path:", path)

    print("\n== List variables (Section 3.1.4, Example 17) ==")
    shortest_lists = evaluate_lcrpq(
        "q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), "
        "shortest (Transfer^z)+(y1, y2)",
        fig2,
    )
    for row in sorted(shortest_lists)[:5]:
        print("owners + shortest transfer list:", row)

    print("\n== Data tests (Section 3.2.1, the Section 6.3 walkthrough) ==")
    cheap_somewhere = (
        "(_) ([Transfer](_))* [Transfer][amount < 4500000](_) ([Transfer](_))*"
    )
    for binding in evaluate_dlrpq(cheap_somewhere, fig3, "a3", "a5", mode="shortest"):
        print("shortest Mike->Rebecca with a cheap transfer:", binding.path)


if __name__ == "__main__":
    main()
