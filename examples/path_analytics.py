"""Path analytics at scale: PMRs, counting, enumeration, k-shortest.

Uses the Figure 5 family to show how the automata-based toolchain copes
with exponentially many (or infinitely many) matching paths.

Run with::

    python examples/path_analytics.py
"""

from repro.graph.datasets import figure3_graph
from repro.graph.generators import diamond_chain
from repro.pmr.build import pmr_for_rpq, pmr_for_unblocked_cycles
from repro.pmr.enumerate import enumerate_spaths
from repro.pmr.ops import count_paths_of_length, is_finite, pmr_size
from repro.rpq.counting import count_matching_paths
from repro.rpq.kshortest import k_shortest_matching_paths


def main() -> None:
    print("== Figure 5: 2^n paths in O(n) space ==")
    print(f"{'n':>4}  {'paths':>22}  {'pmr size':>8}")
    for n in (8, 16, 32, 64):
        graph = diamond_chain(n)
        pmr = pmr_for_rpq("a*", graph, "j0", f"j{n}")
        paths = count_paths_of_length(pmr, 2 * n)
        print(f"{n:>4}  {paths:>22}  {pmr_size(pmr):>8}")

    print("\n== Counting without enumerating (unambiguous automata) ==")
    graph = diamond_chain(20)
    count = count_matching_paths("a*", graph, "j0", "j20", length=40)
    print(f"diamond(20) has {count} matching paths of length 40 (= 2^20)")

    print("\n== Enumerating a few of the 2^10 paths, DFS order ==")
    pmr = pmr_for_rpq("a*", diamond_chain(10), "j0", "j10")
    for index, path in enumerate(enumerate_spaths(pmr, limit=3, order="dfs")):
        route = "".join("T" if "up" in e else "B" for e in path.edges()[::2])
        print(f"  path {index}: route {route}")

    print("\n== Infinite path sets, finite PMRs (Section 6.4) ==")
    fig3 = figure3_graph()
    cycles = pmr_for_unblocked_cycles(fig3, "a3")
    print(
        f"unblocked Mike->Mike cycles: finite={is_finite(cycles)}, "
        f"PMR size={pmr_size(cycles)}"
    )
    for path in enumerate_spaths(cycles, limit=2, order="bfs"):
        print("  cycle:", path.edges())

    print("\n== k shortest transfer paths Mike -> Rebecca ==")
    for rank, path in enumerate(
        k_shortest_matching_paths("Transfer+", fig3, "a3", "a5", k=5), start=1
    ):
        print(f"  #{rank} (length {len(path)}): {path.edges()}")


if __name__ == "__main__":
    main()
