"""Static analysis and language tooling (Section 7.1's roadmap, executable).

Shows the analysis toolkit on concrete queries: RPQ containment and
equivalence, the rewrite engine, CRPQ structure (acyclicity, treewidth),
the sound CRPQ containment test, and regular queries in Datalog syntax.

Run with::

    python examples/static_analysis.py
"""

from repro.analysis.containment import (
    crpq_contained_sound,
    rpq_contained,
    rpq_equivalent,
)
from repro.analysis.structure import is_acyclic_crpq, treewidth_exact
from repro.crpq.ast import parse_crpq
from repro.crpq.regular_queries import evaluate_regular_query
from repro.graph.datasets import figure2_graph
from repro.regex.parser import parse_regex
from repro.regex.rewrite import simplify
from repro.regex.ast import to_string


def containment_demo() -> None:
    print("== RPQ containment (automata inclusion) ==")
    checks = [
        ("Transfer.Transfer", "Transfer*"),
        ("Transfer*", "Transfer.Transfer"),
        ("(Transfer.Transfer)*", "Transfer*"),
    ]
    for left, right in checks:
        verdict = rpq_contained(left, right)
        print(f"  {left}  ⊆  {right} :  {verdict}")
    print(
        "  (((a*)*)*)* ≡ a* :",
        rpq_equivalent("(((a*)*)*)*", "a*"),
        " — and simplify() rewrites it to",
        to_string(simplify(parse_regex("(((a*)*)*)*", normalize=False))),
    )


def structure_demo() -> None:
    print("\n== Query structure: acyclicity and treewidth ==")
    queries = {
        "Example 13 q1": (
            "q1(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), "
            "Transfer(x2, x3)"
        ),
        "Example 13 q2": (
            "q2(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), "
            "(Transfer.Transfer?)(x, y)"
        ),
    }
    for name, text in queries.items():
        query = parse_crpq(text)
        print(
            f"  {name}: acyclic={is_acyclic_crpq(query)}, "
            f"treewidth={treewidth_exact(query)}"
        )
    print(
        "  sound containment:",
        crpq_contained_sound(
            "q(x, y) :- Transfer*(x, y)", "q(x, y) :- Transfer(x, y)"
        ),
        "(Transfer ⊆ Transfer*, atom-mapped)",
    )


def regular_query_demo() -> None:
    print("\n== Regular queries (Datalog syntax, Example 15) ==")
    graph = figure2_graph()
    graph.add_edge("back1", "a3", "a1", "Transfer")  # make a1 <-> a3 mutual
    program = """
    Mutual(x, y) :- Transfer(x, y), Transfer(y, x)
    Answer(u, v) :- Mutual+(u, v)
    """
    result = evaluate_regular_query(program, graph)
    print(f"  Mutual+ closure over the extended bank graph: {sorted(result)}")


def main() -> None:
    containment_demo()
    structure_demo()
    regular_query_demo()


if __name__ == "__main__":
    main()
