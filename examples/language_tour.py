"""A guided tour of the paper's language zoo on its own examples.

Walks through Examples 1, 2, 3, 21 and the Section 5.2 pitfalls, printing
what each engine does — the executable version of the paper's narrative.

Run with::

    python examples/language_tour.py
"""

from repro.datatests.dlrpq import evaluate_dlrpq
from repro.gql.listfuncs import diophantine_two_semantics, subset_sum_paths
from repro.gql.pathsets import increasing_edges_via_except
from repro.gql.semantics import match_gql_pattern
from repro.graph.generators import dated_path, self_loop_graph, subset_sum_graph
from repro.graph.property_graph import PropertyGraph


def example1() -> None:
    print("== Example 1: {2} is not concatenation ==")
    graph = PropertyGraph()
    graph.add_edge("e0", "v0", "v1", "a")
    graph.add_edge("e1", "v1", "v2", "a")
    graph.add_edge("loop", "s", "s", "a")
    for pattern in (
        "(x) (()-[z:a]->()){2} (y)",
        "(x) ()-[z:a]->() ()-[z:a]->() (y)",
        "(x) ()-[z:a]->() ()-[z1:a]->() (y)",
    ):
        matches = match_gql_pattern(pattern, graph)
        endpoints = sorted({(m.get("x"), m.get("y")) for m in matches})
        print(f"  {pattern}")
        print(f"    endpoints: {endpoints}")
        sample = next(iter(matches), None)
        if sample is not None:
            print(f"    z is a {sample.kind_of('z')} bound to {sample.get('z')!r}")


def example3_and_21() -> None:
    print("\n== Example 3 vs Example 21: increasing dates on edges ==")
    witness = dated_path(["03-01", "04-01", "01-01", "02-01"], on="edges")
    naive = "(x) ( ()-[u:a]->()-[v:a]->() WHERE u.date < v.date)* (y)"
    matches = match_gql_pattern(naive, witness)
    accepted = ("v0", "v4") in {(m.get("x"), m.get("y")) for m in matches}
    print(f"  naive GQL window-of-two accepts 03,04,01,02: {accepted}  (wrong!)")
    dl = "[a^z][x := date] ( (_)[a^z][date > x][x := date] )*"
    results = list(evaluate_dlrpq(dl, witness, "v0", "v4", mode="all"))
    print(f"  dl-RPQ of Example 21 accepts it: {bool(results)}  (correct)")
    good = dated_path(["01", "02", "03"], on="edges")
    (binding,) = evaluate_dlrpq(dl, good, "v0", "v3", mode="all")
    print(f"  on increasing dates it returns the edge-to-edge path {binding.path}")
    print("  and the EXCEPT workaround agrees:",
          {p.edges() for p in increasing_edges_via_except(good, "v0", "v3", prop="date")})


def section52_pitfalls() -> None:
    print("\n== Section 5.2: lists make hard queries easy to write ==")
    gadget = subset_sum_graph([3, 5, 7, 11])
    hits = subset_sum_paths(gadget, "v0", "v4", target_sum=15)
    print(f"  subset-sum via reduce: 3+5+7=15 found in {len(hits)} path(s)")
    loop = self_loop_graph(a=1, b=-5, c=6)
    report = diophantine_two_semantics(loop)
    print("  Diophantine ambiguity on a one-node graph:")
    print(f"    condition-after-shortest: {sorted(report['condition_after_shortest'])}")
    print(f"    shortest-satisfying:      {sorted(report['shortest_satisfying'])}")
    print("    (the second semantics just solved x^2 - 5x + 6 = 0)")


def main() -> None:
    example1()
    example3_and_21()
    section52_pitfalls()


if __name__ == "__main__":
    main()
