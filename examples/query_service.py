"""Walkthrough: the resident query service end to end.

Starts a server inside this process, then exercises the full client
surface — uploads, every query op, concurrent clients hammering the answer
cache, overload shedding, the HTTP facade — and finishes with the server's
own telemetry.

Run with::

    python examples/query_service.py
"""

import json
import threading
import time

from repro.graph.edge_labeled import EdgeLabeledGraph
from repro.server.admission import AdmissionController
from repro.server.app import ServerThread
from repro.server.client import ServerClient, ServerError, http_get


def build_payments_graph() -> EdgeLabeledGraph:
    """A tiny payment network: accounts wired by transfers and ownership."""
    graph = EdgeLabeledGraph()
    transfers = [
        ("acc1", "acc2"), ("acc2", "acc3"), ("acc3", "acc4"),
        ("acc4", "acc1"), ("acc2", "acc5"), ("acc5", "acc3"),
    ]
    for index, (src, tgt) in enumerate(transfers):
        graph.add_edge(f"t{index}", src, tgt, "Transfer")
    for index, account in enumerate(["acc1", "acc3", "acc5"]):
        graph.add_edge(f"o{index}", account, f"person{index}", "owner")
    return graph


def main() -> None:
    print("== starting the service (background thread, ephemeral port) ==")
    with ServerThread() as harness:
        host, port = harness.address
        print(f"listening on {host}:{port}")

        with ServerClient(host, port) as client:
            print("\n== built-in graphs (the paper's figures) ==")
            for info in client.list_graphs():
                print(f"  {info['name']}: {info['kind']}, "
                      f"{info['nodes']} nodes, {info['edges']} edges")

            print("\n== uploading a graph ==")
            info = client.upload_graph("payments", build_payments_graph())
            print(f"  cataloged 'payments' at version {info['version']}")

            print("\n== RPQ over the wire ==")
            result = client.rpq("payments", "(Transfer+) owner")
            print(f"  (Transfer+) owner: {result['count']} pairs, e.g. "
                  f"{result['pairs'][:3]}")

            print("\n== CRPQ over the wire ==")
            result = client.crpq(
                "payments", "Reach(x, y) :- Transfer+(x, y), owner(y, z)"
            )
            print(f"  rows: {result['rows'][:3]} ... ({result['count']} total)")

            print("\n== the answer cache at work ==")
            start = time.perf_counter()
            client.rpq("fig2", "(Transfer | owner)*")
            cold = time.perf_counter() - start
            start = time.perf_counter()
            client.rpq("fig2", "(Transfer | owner)*")
            warm = time.perf_counter() - start
            print(f"  cold: {cold * 1e3:.2f} ms, warm (cache hit): "
                  f"{warm * 1e3:.2f} ms")

        print("\n== 8 concurrent clients, one repetitive workload ==")
        queries = ["Transfer", "Transfer*", "(Transfer+) owner", "owner"] * 6

        def drive(share):
            with ServerClient(host, port) as connection:
                for query in share:
                    connection.rpq("payments", query)

        threads = [
            threading.Thread(target=drive, args=(queries[i::8],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServerClient(host, port) as client:
            cache = client.stats()["answer_cache"]
        print(f"  answer cache: {cache['hits']} hits / "
              f"{cache['misses']} misses")

        print("\n== HTTP facade ==")
        status, body = http_get(host, port, "/healthz")
        print(f"  GET /healthz -> {status}: {json.dumps(json.loads(body))}")
        status, body = http_get(host, port, "/metrics")
        exposition = [line for line in body.splitlines()
                      if line.startswith("repro_server_requests_total")]
        print(f"  GET /metrics -> {status}: {exposition[0]}")

    print("\n== overload: a tiny server sheds load with typed errors ==")
    admission = AdmissionController(
        max_concurrency=1, max_queue=0, queue_timeout=0.2, query_timeout=5.0
    )
    with ServerThread(admission=admission) as harness:
        host, port = harness.address
        holder = ServerClient(host, port)
        blocker = threading.Thread(target=holder.sleep, args=(0.8,))
        blocker.start()
        time.sleep(0.2)
        try:
            with ServerClient(host, port) as prober:
                prober.rpq("fig2", "Transfer")
        except ServerError as error:
            print(f"  rejected fast: code={error.code} "
                  f"reason={error.details.get('reason')}")
        blocker.join()
        holder.close()

    print("\nboth servers drained cleanly — done.")


if __name__ == "__main__":
    main()
